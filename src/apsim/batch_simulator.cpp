#include "apsim/batch_simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <stdexcept>

#include "util/fault_injection.hpp"

namespace apss::apsim {

const char* to_string(MacroFamily family) noexcept {
  switch (family) {
    case MacroFamily::kHamming: return "hamming";
    case MacroFamily::kPacked: return "packed";
    case MacroFamily::kMultiplexed: return "multiplexed";
  }
  return "?";
}

using anml::CounterPort;
using anml::Element;
using anml::ElementId;
using anml::ElementKind;
using anml::StartKind;
using anml::SymbolSet;

/// Shape-neutral recognizer output: everything the shared back-end needs to
/// emit a compiled program. A lane is one (counter, report) pair; lane l's
/// dim-i matching state uses match class lane_class[l * dims + i].
struct BatchProgram::LaneTable {
  MacroFamily family = MacroFamily::kHamming;
  std::size_t lanes = 0;
  std::size_t dims = 0;
  std::size_t levels = 1;
  int sof = -1;
  int eof = -1;
  std::vector<SymbolSet> classes;        ///< distinct matching classes
  std::vector<std::uint8_t> lane_class;  ///< lanes x dims class indices
  std::vector<ElementId> report_elem;    ///< per lane
  std::vector<std::uint32_t> report_code;
};

namespace {

/// Structural role of an element inside the macro set. kMatch doubles as
/// the packed shape's value-state role (both are per-dimension matching
/// states; only their fan-out wiring differs).
enum class Role : std::uint8_t {
  kUnassigned,
  kGuard,
  kChain,
  kMatch,
  kCollector,
  kBridge,
  kSort,
  kEof,
  kCounter,
  kReport,
};

/// (role, owner, pos) of one element. `owner` is the macro index for the
/// plain shape; for the packed shape it is the group index on shared roles
/// (guard/chain/match/bridge/sort/eof) and the LANE index on per-lane roles
/// (collector/counter/report).
struct Slot {
  Role role = Role::kUnassigned;
  std::uint32_t owner = 0;
  std::uint32_t pos = 0;
};

/// Returns the only symbol of a single-symbol class, or -1.
int single_symbol(const SymbolSet& s) {
  if (s.count() != 1) {
    return -1;
  }
  for (int sym = 0; sym < 256; ++sym) {
    if (s.test(static_cast<std::uint8_t>(sym))) {
      return sym;
    }
  }
  return -1;
}

/// Interns `symbols` into `classes`, returning its index, or -1 when the
/// class budget (kMaxBatchMatchClasses) is exhausted.
int intern_class(std::vector<SymbolSet>& classes, const SymbolSet& symbols) {
  const auto it = std::find(classes.begin(), classes.end(), symbols);
  if (it != classes.end()) {
    return static_cast<int>(it - classes.begin());
  }
  if (classes.size() >= kMaxBatchMatchClasses) {
    return -1;
  }
  classes.push_back(symbols);
  return static_cast<int>(classes.size() - 1);
}

/// Plain vs multiplexed (for BatchProgram::family()): multiplexed matching
/// classes are the slice-ternary pairs 0b*......b — ternary(value, mask)
/// with mask = control bit | one payload bit (core::Alphabet puts the
/// control flag at bit 7). A class set spanning more than one payload
/// slice is the Fig. 6 shape; anything else counts as plain Hamming.
MacroFamily detect_hamming_family(const std::vector<SymbolSet>& classes) {
  std::uint8_t slices_used = 0;
  for (const SymbolSet& c : classes) {
    bool matched = false;
    for (std::size_t s = 0; s < 7 && !matched; ++s) {
      const auto mask = static_cast<std::uint8_t>(0x80u | (1u << s));
      for (int b = 0; b < 2 && !matched; ++b) {
        const auto value = static_cast<std::uint8_t>(b ? (1u << s) : 0u);
        if (c == SymbolSet::ternary(value, mask)) {
          slices_used |= static_cast<std::uint8_t>(1u << s);
          matched = true;
        }
      }
    }
    if (!matched) {
      return MacroFamily::kHamming;  // free-form classes: the plain shape
    }
  }
  return std::popcount(slices_used) > 1 ? MacroFamily::kMultiplexed
                                        : MacroFamily::kHamming;
}

// Required-out-edge bookkeeping bits (per role; see check loops below).
constexpr std::uint8_t kSawFirst = 1;    // chain succ / collector parent / ...
constexpr std::uint8_t kSawSecond = 2;   // match succ / counter enable
constexpr std::uint8_t kSawThird = 4;    // sort -> eof

/// Shape-independent per-element checks shared by both recognizers: element
/// kinds, start kinds, reporting flags, guard/EOF single-symbol uniformity,
/// match-class interning (into `classes`, recorded per element in
/// `elem_class`), counter mode/threshold. Returns "" on success, else the
/// failure reason. The sort-class check needs the resolved EOF symbol and
/// stays with the callers.
std::string check_element_properties(const anml::AutomataNetwork& network,
                                     const std::vector<Slot>& slots,
                                     std::size_t dims, int& sof, int& eof,
                                     std::vector<SymbolSet>& classes,
                                     std::vector<std::uint8_t>& elem_class) {
  for (ElementId id = 0; id < network.size(); ++id) {
    const Element& e = network.element(id);
    const Role role = slots[id].role;
    const bool is_counter = role == Role::kCounter;
    if (!is_counter && e.kind != ElementKind::kSte) {
      return "non-STE element in an STE slot";
    }
    if (!is_counter && e.start !=
        (role == Role::kGuard ? StartKind::kAllInput : StartKind::kNone)) {
      return "unexpected start kind";
    }
    if (e.reporting != (role == Role::kReport)) {
      return "reporting flag on an unexpected element";
    }
    switch (role) {
      case Role::kGuard: {
        const int sym = single_symbol(e.symbols);
        if (sym < 0 || (sof >= 0 && sym != sof)) {
          return "guard class is not one uniform symbol";
        }
        sof = sym;
        break;
      }
      case Role::kEof: {
        const int sym = single_symbol(e.symbols);
        if (sym < 0 || (eof >= 0 && sym != eof)) {
          return "eof class is not one uniform symbol";
        }
        eof = sym;
        break;
      }
      case Role::kMatch: {
        const int c = intern_class(classes, e.symbols);
        if (c < 0) {
          return "more than " + std::to_string(kMaxBatchMatchClasses) +
                 " distinct match classes";
        }
        elem_class[id] = static_cast<std::uint8_t>(c);
        break;
      }
      case Role::kChain:
      case Role::kCollector:
      case Role::kBridge:
      case Role::kReport:
        if (!e.symbols.is_all()) {
          return "backbone/collector/bridge/report class must be *";
        }
        break;
      case Role::kSort:
        break;  // checked against eof by the callers
      case Role::kCounter:
        if (e.kind != ElementKind::kCounter ||
            e.mode != anml::CounterMode::kPulse ||
            e.threshold != static_cast<std::uint32_t>(dims)) {
          return "counter is not pulse-mode with threshold == dims";
        }
        break;
      case Role::kUnassigned:
        break;
    }
  }
  if (sof < 0 || eof < 0 || sof == eof) {
    return "guard/eof symbols missing or identical";
  }
  return "";
}

}  // namespace

// ---------------------------------------------------------------------------
// Plain Hamming/sorting macros (also the multiplexed per-slice replicas,
// which differ only in their matching-state classes).
// ---------------------------------------------------------------------------

std::shared_ptr<const BatchProgram> BatchProgram::try_compile(
    const anml::AutomataNetwork& network,
    std::span<const HammingMacroSlots> macros, SimOptions options,
    std::string* reason) {
  const auto fail = [&](const std::string& why) {
    if (reason != nullptr) {
      *reason = why;
    }
    return std::shared_ptr<const BatchProgram>{};
  };

  if (options.max_counter_increment != 1) {
    return fail("bit-parallel backend requires max_counter_increment == 1 "
                "(enables must OR together)");
  }
  if (macros.empty()) {
    return fail("no macros");
  }
  const std::size_t n = macros.size();
  const std::size_t dims = macros[0].match.size();
  const std::size_t levels = macros[0].collector_levels;
  if (dims == 0) {
    return fail("macro has zero dimensions");
  }
  if (levels == 0 || levels > 63) {
    return fail("collector depth outside [1, 63]");
  }

  // --- Assign every element a (role, macro, position) ----------------------
  std::vector<Slot> slots(network.size());
  const auto assign = [&](ElementId id, Role role, std::size_t macro,
                          std::size_t pos) {
    if (id >= network.size() || slots[id].role != Role::kUnassigned) {
      return false;
    }
    slots[id] = {role, static_cast<std::uint32_t>(macro),
                 static_cast<std::uint32_t>(pos)};
    return true;
  };
  for (std::size_t m = 0; m < n; ++m) {
    const HammingMacroSlots& s = macros[m];
    if (s.match.size() != dims || s.chain.size() != dims ||
        s.collector_levels != levels || s.bridge.size() != levels) {
      return fail("macros are not structurally identical");
    }
    if (m > 0 && s.counter <= macros[m - 1].counter) {
      return fail("macros are not in counter creation order "
                  "(within-cycle report order would diverge)");
    }
    bool ok = assign(s.guard, Role::kGuard, m, 0) &&
              assign(s.sort_state, Role::kSort, m, 0) &&
              assign(s.eof_state, Role::kEof, m, 0) &&
              assign(s.counter, Role::kCounter, m, 0) &&
              assign(s.report, Role::kReport, m, 0);
    for (std::size_t i = 0; ok && i < dims; ++i) {
      ok = assign(s.chain[i], Role::kChain, m, i) &&
           assign(s.match[i], Role::kMatch, m, i);
    }
    for (std::size_t i = 0; ok && i < s.collectors.size(); ++i) {
      ok = assign(s.collectors[i], Role::kCollector, m, i);
    }
    for (std::size_t i = 0; ok && i < levels; ++i) {
      ok = assign(s.bridge[i], Role::kBridge, m, i);
    }
    if (!ok) {
      return fail("macro slot ids out of range or shared between macros");
    }
  }
  for (ElementId id = 0; id < network.size(); ++id) {
    if (slots[id].role == Role::kUnassigned) {
      return fail("network contains elements outside the macro set");
    }
  }

  // --- Element property checks + match-class discovery ---------------------
  LaneTable lanes;
  lanes.lanes = n;
  lanes.dims = dims;
  lanes.levels = levels;
  std::vector<std::uint8_t> elem_class(network.size(), 0);
  if (const std::string why = check_element_properties(
          network, slots, dims, lanes.sof, lanes.eof, lanes.classes,
          elem_class);
      !why.empty()) {
    return fail(why);
  }
  for (std::size_t m = 0; m < n; ++m) {
    if (!(network.element(macros[m].sort_state).symbols ==
          SymbolSet::all_except(static_cast<std::uint8_t>(lanes.eof)))) {
      return fail("sort class must be all-except-eof");
    }
  }

  // --- Edge checks ----------------------------------------------------------
  // Every edge must be one of the macro's internal connections; collector
  // levels are recomputed from the wiring so the delay-line equivalence
  // (every match -> counter path has length exactly L) is verified, not
  // assumed.
  std::vector<std::uint8_t> saw(network.size(), 0);
  std::vector<std::int32_t> collector_level(network.size(), -1);
  std::vector<std::vector<ElementId>> collector_in(network.size());
  for (const anml::Edge& edge : network.edges()) {
    if (edge.from >= network.size() || edge.to >= network.size()) {
      return fail("edge endpoint out of range");
    }
    const Slot& a = slots[edge.from];
    const Slot& b = slots[edge.to];
    if (a.owner != b.owner) {
      return fail("edge crosses macros");
    }
    const bool reset_port = edge.port == CounterPort::kReset;
    if (edge.port == CounterPort::kThreshold) {
      return fail("dynamic-threshold edge");
    }
    bool legal = false;
    switch (a.role) {
      case Role::kGuard:
        legal = (b.role == Role::kChain || b.role == Role::kMatch) &&
                b.pos == 0 && !reset_port;
        if (legal) {
          saw[edge.from] |= b.role == Role::kChain ? kSawFirst : kSawSecond;
        }
        break;
      case Role::kChain:
        if (a.pos + 1 < dims) {
          legal = (b.role == Role::kChain || b.role == Role::kMatch) &&
                  b.pos == a.pos + 1 && !reset_port;
          if (legal) {
            saw[edge.from] |= b.role == Role::kChain ? kSawFirst : kSawSecond;
          }
        } else {
          legal = b.role == Role::kBridge && b.pos == 0 && !reset_port;
          if (legal) {
            saw[edge.from] |= kSawFirst;
          }
        }
        break;
      case Role::kMatch:
        legal = b.role == Role::kCollector && !reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
          collector_in[edge.to].push_back(edge.from);
        }
        break;
      case Role::kCollector:
        legal = (b.role == Role::kCollector || b.role == Role::kCounter) &&
                !reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
          if (b.role == Role::kCollector) {
            collector_in[edge.to].push_back(edge.from);
          } else {
            saw[edge.from] |= kSawSecond;  // root: feeds the counter directly
          }
        }
        break;
      case Role::kBridge:
        if (a.pos + 1 < levels) {
          legal = b.role == Role::kBridge && b.pos == a.pos + 1 && !reset_port;
        } else {
          legal = b.role == Role::kSort && !reset_port;
        }
        if (legal) {
          saw[edge.from] |= kSawFirst;
        }
        break;
      case Role::kSort:
        legal = !reset_port &&
                ((b.role == Role::kSort && edge.to == edge.from) ||
                 b.role == Role::kCounter || b.role == Role::kEof);
        if (legal) {
          saw[edge.from] |= b.role == Role::kSort    ? kSawFirst
                            : b.role == Role::kCounter ? kSawSecond
                                                       : kSawThird;
        }
        break;
      case Role::kEof:
        legal = b.role == Role::kCounter && reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
        }
        break;
      case Role::kCounter:
        legal = b.role == Role::kReport && !reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
        }
        break;
      case Role::kReport:
      case Role::kUnassigned:
        legal = false;
        break;
    }
    if (!legal) {
      return fail("unexpected edge for the Hamming/sorting macro shape");
    }
  }

  // Collector depth: slots list collectors in creation order (level by
  // level), so inputs are always assigned before their parent is visited.
  for (std::size_t m = 0; m < n; ++m) {
    for (const ElementId c : macros[m].collectors) {
      if (collector_in[c].empty()) {
        return fail("collector with no inputs");
      }
      std::int32_t level = -2;
      for (const ElementId src : collector_in[c]) {
        const std::int32_t in_level =
            slots[src].role == Role::kMatch ? 0 : collector_level[src];
        if (in_level < 0 || (level != -2 && in_level != level)) {
          return fail("collector tree depth is not uniform");
        }
        level = in_level;
      }
      collector_level[c] = level + 1;
      const bool is_root = (saw[c] & kSawSecond) != 0;
      if (is_root != (collector_level[c] == static_cast<std::int32_t>(levels))) {
        return fail("collector root depth != collector_levels");
      }
    }
  }

  // Required out-edges present?
  for (ElementId id = 0; id < network.size(); ++id) {
    std::uint8_t need = 0;
    switch (slots[id].role) {
      case Role::kGuard: need = kSawFirst | kSawSecond; break;
      case Role::kChain:
        need = slots[id].pos + 1 < dims ? (kSawFirst | kSawSecond) : kSawFirst;
        break;
      case Role::kMatch: need = kSawFirst; break;
      case Role::kCollector: need = kSawFirst; break;
      case Role::kBridge: need = kSawFirst; break;
      case Role::kSort: need = kSawFirst | kSawSecond | kSawThird; break;
      case Role::kEof: need = kSawFirst; break;
      case Role::kCounter: need = kSawFirst; break;
      case Role::kReport:
      case Role::kUnassigned: need = 0; break;
    }
    if ((saw[id] & need) != need) {
      return fail("macro is missing a required connection");
    }
  }

  // --- Emit the lane table --------------------------------------------------
  lanes.family = detect_hamming_family(lanes.classes);
  lanes.lane_class.resize(n * dims);
  lanes.report_elem.resize(n);
  lanes.report_code.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    lanes.report_elem[m] = macros[m].report;
    lanes.report_code[m] = network.element(macros[m].report).report_code;
    for (std::size_t i = 0; i < dims; ++i) {
      lanes.lane_class[m * dims + i] = elem_class[macros[m].match[i]];
    }
  }
  return compile_lanes(lanes);
}

// ---------------------------------------------------------------------------
// Vector-packed groups (shared ladder, per-lane collectors/counter/report).
// ---------------------------------------------------------------------------

std::shared_ptr<const BatchProgram> BatchProgram::try_compile(
    const anml::AutomataNetwork& network,
    std::span<const PackedGroupSlots> groups, SimOptions options,
    std::string* reason) {
  const auto fail = [&](const std::string& why) {
    if (reason != nullptr) {
      *reason = why;
    }
    return std::shared_ptr<const BatchProgram>{};
  };

  if (options.max_counter_increment != 1) {
    return fail("bit-parallel backend requires max_counter_increment == 1 "
                "(enables must OR together)");
  }
  if (groups.empty()) {
    return fail("no packed groups");
  }
  const std::size_t dims = groups[0].chain.size();
  const std::size_t levels = groups[0].collector_levels;
  if (dims == 0) {
    return fail("packed group has zero dimensions");
  }
  if (levels == 0 || levels > 63) {
    return fail("collector depth outside [1, 63]");
  }

  // --- Assign every element a (role, group-or-lane, position) --------------
  // Shared roles carry the group index; collector/counter/report carry the
  // global lane index. lane_group maps lanes back to their group.
  std::vector<Slot> slots(network.size());
  const auto assign = [&](ElementId id, Role role, std::size_t owner,
                          std::size_t pos) {
    if (id >= network.size() || slots[id].role != Role::kUnassigned) {
      return false;
    }
    slots[id] = {role, static_cast<std::uint32_t>(owner),
                 static_cast<std::uint32_t>(pos)};
    return true;
  };
  std::size_t n = 0;  // total lanes
  std::vector<std::uint32_t> lane_group;
  ElementId prev_counter = anml::kInvalidElement;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const PackedGroupSlots& s = groups[g];
    const std::size_t count = s.counters.size();
    if (count == 0 || s.reports.size() != count ||
        s.collectors.size() != count) {
      return fail("packed group lane spans are inconsistent");
    }
    if (s.chain.size() != dims || s.value_states.size() != dims ||
        s.collector_levels != levels || s.bridge.size() != levels) {
      return fail("packed groups are not structurally identical");
    }
    bool ok = assign(s.guard, Role::kGuard, g, 0) &&
              assign(s.sort_state, Role::kSort, g, 0) &&
              assign(s.eof_state, Role::kEof, g, 0);
    for (std::size_t i = 0; ok && i < dims; ++i) {
      ok = assign(s.chain[i], Role::kChain, g, i);
      if (ok && (s.value_states[i].empty() || s.value_states[i].size() > 2)) {
        return fail("dimension must carry one or two value states");
      }
      for (std::size_t v = 0; ok && v < s.value_states[i].size(); ++v) {
        ok = assign(s.value_states[i][v], Role::kMatch, g, i);
      }
    }
    for (std::size_t i = 0; ok && i < levels; ++i) {
      ok = assign(s.bridge[i], Role::kBridge, g, i);
    }
    for (std::size_t v = 0; ok && v < count; ++v) {
      const std::size_t lane = n + v;
      if (prev_counter != anml::kInvalidElement &&
          s.counters[v] <= prev_counter) {
        return fail("packed lanes are not in counter creation order "
                    "(within-cycle report order would diverge)");
      }
      prev_counter = s.counters[v];
      ok = assign(s.counters[v], Role::kCounter, lane, 0) &&
           assign(s.reports[v], Role::kReport, lane, 0);
      for (std::size_t c = 0; ok && c < s.collectors[v].size(); ++c) {
        ok = assign(s.collectors[v][c], Role::kCollector, lane, c);
      }
    }
    if (!ok) {
      return fail("packed slot ids out of range or shared between roles");
    }
    lane_group.insert(lane_group.end(), count, static_cast<std::uint32_t>(g));
    n += count;
  }
  for (ElementId id = 0; id < network.size(); ++id) {
    if (slots[id].role == Role::kUnassigned) {
      return fail("network contains elements outside the macro set");
    }
  }

  // --- Element property checks + match-class discovery ---------------------
  LaneTable lanes;
  lanes.family = MacroFamily::kPacked;
  lanes.lanes = n;
  lanes.dims = dims;
  lanes.levels = levels;
  std::vector<std::uint8_t> elem_class(network.size(), 0);
  if (const std::string why = check_element_properties(
          network, slots, dims, lanes.sof, lanes.eof, lanes.classes,
          elem_class);
      !why.empty()) {
    return fail(why);
  }
  for (const PackedGroupSlots& s : groups) {
    if (!(network.element(s.sort_state).symbols ==
          SymbolSet::all_except(static_cast<std::uint8_t>(lanes.eof)))) {
      return fail("sort class must be all-except-eof");
    }
  }

  // --- Edge checks ----------------------------------------------------------
  // As for the plain shape, but the ladder fans out to shared value states
  // and the sort/eof states fan out to EVERY lane's counter. Value states
  // must each be driven by the wavefront (a dead leaf would desynchronise
  // the lanes that collect it), hence the has_driver tracking.
  std::vector<std::uint8_t> saw(network.size(), 0);
  std::vector<std::uint8_t> has_driver(network.size(), 0);
  std::vector<std::int32_t> collector_level(network.size(), -1);
  std::vector<std::vector<ElementId>> collector_in(network.size());
  std::vector<std::uint8_t> lane_sort_enable(n, 0);
  std::vector<std::uint8_t> lane_eof_reset(n, 0);
  for (const anml::Edge& edge : network.edges()) {
    if (edge.from >= network.size() || edge.to >= network.size()) {
      return fail("edge endpoint out of range");
    }
    const Slot& a = slots[edge.from];
    const Slot& b = slots[edge.to];
    const bool reset_port = edge.port == CounterPort::kReset;
    if (edge.port == CounterPort::kThreshold) {
      return fail("dynamic-threshold edge");
    }
    // Group of each endpoint (lanes resolve through lane_group).
    const auto group_of = [&](const Slot& s) {
      return s.role == Role::kCollector || s.role == Role::kCounter ||
                     s.role == Role::kReport
                 ? lane_group[s.owner]
                 : s.owner;
    };
    if (group_of(a) != group_of(b)) {
      return fail("edge crosses packed groups");
    }
    bool legal = false;
    switch (a.role) {
      case Role::kGuard:
        legal = (b.role == Role::kChain || b.role == Role::kMatch) &&
                b.pos == 0 && !reset_port;
        if (legal) {
          saw[edge.from] |= b.role == Role::kChain ? kSawFirst : kSawSecond;
          if (b.role == Role::kMatch) {
            has_driver[edge.to] = 1;
          }
        }
        break;
      case Role::kChain:
        if (a.pos + 1 < dims) {
          legal = (b.role == Role::kChain || b.role == Role::kMatch) &&
                  b.pos == a.pos + 1 && !reset_port;
          if (legal) {
            saw[edge.from] |= b.role == Role::kChain ? kSawFirst : kSawSecond;
            if (b.role == Role::kMatch) {
              has_driver[edge.to] = 1;
            }
          }
        } else {
          legal = b.role == Role::kBridge && b.pos == 0 && !reset_port;
          if (legal) {
            saw[edge.from] |= kSawFirst;
          }
        }
        break;
      case Role::kMatch:
        // Value state: feeds level-0 collectors of any lane in its group.
        legal = b.role == Role::kCollector && !reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
          collector_in[edge.to].push_back(edge.from);
        }
        break;
      case Role::kCollector:
        legal = (b.role == Role::kCollector || b.role == Role::kCounter) &&
                b.owner == a.owner && !reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
          if (b.role == Role::kCollector) {
            collector_in[edge.to].push_back(edge.from);
          } else {
            saw[edge.from] |= kSawSecond;  // root: feeds the counter directly
          }
        }
        break;
      case Role::kBridge:
        if (a.pos + 1 < levels) {
          legal = b.role == Role::kBridge && b.pos == a.pos + 1 && !reset_port;
        } else {
          legal = b.role == Role::kSort && !reset_port;
        }
        if (legal) {
          saw[edge.from] |= kSawFirst;
        }
        break;
      case Role::kSort:
        legal = !reset_port &&
                ((b.role == Role::kSort && edge.to == edge.from) ||
                 b.role == Role::kCounter || b.role == Role::kEof);
        if (legal) {
          if (b.role == Role::kCounter) {
            lane_sort_enable[b.owner] = 1;
          }
          saw[edge.from] |= b.role == Role::kSort    ? kSawFirst
                            : b.role == Role::kCounter ? kSawSecond
                                                       : kSawThird;
        }
        break;
      case Role::kEof:
        legal = b.role == Role::kCounter && reset_port;
        if (legal) {
          lane_eof_reset[b.owner] = 1;
          saw[edge.from] |= kSawFirst;
        }
        break;
      case Role::kCounter:
        legal = b.role == Role::kReport && b.owner == a.owner && !reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
        }
        break;
      case Role::kReport:
      case Role::kUnassigned:
        legal = false;
        break;
    }
    if (!legal) {
      return fail("unexpected edge for the packed macro shape");
    }
  }

  // Per-lane collector depth AND leaf coverage: lane l's tree must reach
  // its counter in exactly `levels` steps and collect exactly one value
  // state per dimension — that value state's class IS lane l's dim class.
  lanes.lane_class.assign(n * dims, 0);
  lanes.report_elem.resize(n);
  lanes.report_code.resize(n);
  std::vector<std::uint8_t> dim_seen(dims, 0);
  std::size_t lane = 0;
  for (const PackedGroupSlots& s : groups) {
    for (std::size_t v = 0; v < s.counters.size(); ++v, ++lane) {
      std::fill(dim_seen.begin(), dim_seen.end(), 0);
      for (const ElementId c : s.collectors[v]) {
        if (collector_in[c].empty()) {
          return fail("collector with no inputs");
        }
        std::int32_t level = -2;
        for (const ElementId src : collector_in[c]) {
          std::int32_t in_level = -1;
          if (slots[src].role == Role::kMatch) {
            in_level = 0;
            const std::size_t dim = slots[src].pos;
            if (dim_seen[dim] != 0) {
              return fail("lane collects a dimension more than once");
            }
            dim_seen[dim] = 1;
            lanes.lane_class[lane * dims + dim] = elem_class[src];
          } else {
            in_level = collector_level[src];
          }
          if (in_level < 0 || (level != -2 && in_level != level)) {
            return fail("collector tree depth is not uniform");
          }
          level = in_level;
        }
        collector_level[c] = level + 1;
        const bool is_root = (saw[c] & kSawSecond) != 0;
        if (is_root !=
            (collector_level[c] == static_cast<std::int32_t>(levels))) {
          return fail("collector root depth != collector_levels");
        }
      }
      for (std::size_t i = 0; i < dims; ++i) {
        if (dim_seen[i] == 0) {
          return fail("lane does not collect every dimension");
        }
      }
      if (lane_sort_enable[lane] == 0 || lane_eof_reset[lane] == 0) {
        return fail("lane counter is missing its sort enable or eof reset");
      }
      lanes.report_elem[lane] = s.reports[v];
      lanes.report_code[lane] = network.element(s.reports[v]).report_code;
    }
  }

  // Required out-edges present?
  for (ElementId id = 0; id < network.size(); ++id) {
    std::uint8_t need = 0;
    switch (slots[id].role) {
      case Role::kGuard: need = kSawFirst | kSawSecond; break;
      case Role::kChain:
        need = slots[id].pos + 1 < dims ? (kSawFirst | kSawSecond) : kSawFirst;
        break;
      case Role::kMatch:
        if (has_driver[id] == 0) {
          return fail("value state is not driven by the wavefront");
        }
        need = kSawFirst;
        break;
      case Role::kCollector: need = kSawFirst; break;
      case Role::kBridge: need = kSawFirst; break;
      case Role::kSort: need = kSawFirst | kSawSecond | kSawThird; break;
      case Role::kEof: need = kSawFirst; break;
      case Role::kCounter: need = kSawFirst; break;
      case Role::kReport:
      case Role::kUnassigned: need = 0; break;
    }
    if ((saw[id] & need) != need) {
      return fail("packed group is missing a required connection");
    }
  }

  return compile_lanes(lanes);
}

// ---------------------------------------------------------------------------
// Shared back-end: lane table -> packed program.
// ---------------------------------------------------------------------------

std::shared_ptr<const BatchProgram> BatchProgram::compile_lanes(
    const LaneTable& lanes) {
  const std::size_t n = lanes.lanes;
  const std::size_t dims = lanes.dims;
  const std::size_t words = (n + 63) / 64;

  BatchProgramState state;
  state.family = lanes.family;
  state.lanes = n;
  state.dims = dims;
  state.levels = lanes.levels;
  state.class_count = lanes.classes.size();
  state.sof = static_cast<std::uint8_t>(lanes.sof);
  state.eof = static_cast<std::uint8_t>(lanes.eof);
  for (int sym = 0; sym < 256; ++sym) {
    const auto s = static_cast<std::uint8_t>(sym);
    std::uint16_t accept = 0;
    for (std::size_t c = 0; c < lanes.classes.size(); ++c) {
      if (lanes.classes[c].test(s)) {
        accept |= static_cast<std::uint16_t>(1u << c);
      }
    }
    state.sym_classes[s] = accept;
  }
  state.dim_rows.assign(dims * state.class_count * words, 0);
  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t i = 0; i < dims; ++i) {
      const std::size_t c = lanes.lane_class[l * dims + i];
      state.dim_rows[(i * state.class_count + c) * words + l / 64] |=
          std::uint64_t{1} << (l % 64);
    }
  }
  state.report_elem = lanes.report_elem;
  state.report_code = lanes.report_code;
  // Funnel through from_state so the invariants it enforces on artifact
  // load also hold for every freshly compiled program (a violation here
  // would be a recognizer bug, surfaced as a decline).
  return from_state(state, nullptr);
}

std::shared_ptr<const BatchProgram> BatchProgram::from_state(
    const BatchProgramState& s, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "batch program state: " + why;
    }
    return std::shared_ptr<const BatchProgram>{};
  };

  // Caps keep every derived size computation comfortably inside 64 bits
  // (dims * classes * words <= 2^20 * 2^4 * 2^20) and far beyond any board.
  constexpr std::uint64_t kMaxLanes = std::uint64_t{1} << 26;
  constexpr std::uint64_t kMaxDims = std::uint64_t{1} << 20;
  if (static_cast<std::uint8_t>(s.family) >
      static_cast<std::uint8_t>(MacroFamily::kMultiplexed)) {
    return fail("unknown macro family");
  }
  if (s.lanes == 0 || s.lanes > kMaxLanes) {
    return fail("lane count outside [1, 2^26]");
  }
  if (s.dims == 0 || s.dims > kMaxDims) {
    return fail("dimension count outside [1, 2^20]");
  }
  if (s.levels == 0 || s.levels > 63) {
    return fail("collector depth outside [1, 63]");
  }
  if (s.class_count == 0 || s.class_count > kMaxBatchMatchClasses) {
    return fail("match class count outside [1, " +
                std::to_string(kMaxBatchMatchClasses) + "]");
  }
  if (s.sof == s.eof) {
    return fail("guard and eof symbols are identical");
  }
  const auto class_mask = static_cast<std::uint16_t>(
      (std::uint32_t{1} << s.class_count) - 1);
  for (int sym = 0; sym < 256; ++sym) {
    if ((s.sym_classes[static_cast<std::size_t>(sym)] & ~class_mask) != 0) {
      return fail("symbol classifier references an out-of-range class");
    }
  }
  const std::uint64_t words = (s.lanes + 63) / 64;
  if (s.dim_rows.size() != s.dims * s.class_count * words) {
    return fail("lane-mask row table size does not match the geometry");
  }
  if (s.report_elem.size() != s.lanes || s.report_code.size() != s.lanes) {
    return fail("report tables do not hold one entry per lane");
  }
  const std::uint64_t valid_tail = (s.lanes % 64)
                                       ? (std::uint64_t{1} << (s.lanes % 64)) - 1
                                       : ~std::uint64_t{0};
  // Partition property: at every dimension the class rows must cover each
  // live lane exactly once and touch no dead tail bits — the execution
  // loop's no-masking fast path depends on it.
  for (std::uint64_t i = 0; i < s.dims; ++i) {
    for (std::uint64_t w = 0; w < words; ++w) {
      std::uint64_t seen = 0;
      for (std::uint64_t c = 0; c < s.class_count; ++c) {
        const std::uint64_t row = s.dim_rows[(i * s.class_count + c) * words + w];
        if ((row & seen) != 0) {
          return fail("a lane carries two classes at one dimension");
        }
        seen |= row;
      }
      const std::uint64_t valid = w + 1 == words ? valid_tail
                                                 : ~std::uint64_t{0};
      if (seen != valid) {
        return fail((seen & ~valid) != 0
                        ? "lane-mask rows set bits beyond the live lanes"
                        : "a lane has no class at one dimension");
      }
    }
  }

  auto prog = std::shared_ptr<BatchProgram>(new BatchProgram());
  prog->family_ = s.family;
  prog->macro_count_ = static_cast<std::size_t>(s.lanes);
  prog->dims_ = static_cast<std::size_t>(s.dims);
  prog->levels_ = static_cast<std::size_t>(s.levels);
  prog->words_ = static_cast<std::size_t>(words);
  prog->row_stride_ =
      (prog->words_ + kLaneBlockWords - 1) / kLaneBlockWords * kLaneBlockWords;
  prog->dim_words_ = static_cast<std::size_t>((s.dims + 63) / 64);
  prog->class_count_ = static_cast<std::size_t>(s.class_count);
  prog->valid_tail_ = valid_tail;
  prog->chain_tail_ = (s.dims % 64) ? (std::uint64_t{1} << (s.dims % 64)) - 1
                                    : ~std::uint64_t{0};
  prog->sof_ = s.sof;
  prog->eof_ = s.eof;
  prog->sym_classes_ = s.sym_classes;
  // Re-pack the canonical rows into the padded in-memory layout: every row
  // widens from words_ to row_stride_ 64-bit words, pad words zero, so any
  // execution width up to 512 bits can sweep whole rows untailed. This is
  // the only transform between the serialized image and execution — the
  // layout of the live words is unchanged (lane l at word l/64, bit l%64).
  prog->dim_rows_.assign(s.dims * s.class_count * prog->row_stride_, 0);
  for (std::uint64_t r = 0; r < s.dims * s.class_count; ++r) {
    std::copy_n(s.dim_rows.begin() + static_cast<std::ptrdiff_t>(r * words),
                words, prog->dim_rows_.begin() +
                           static_cast<std::ptrdiff_t>(r * prog->row_stride_));
  }
  prog->valid_.assign(prog->row_stride_, 0);
  for (std::size_t w = 0; w < prog->words_; ++w) {
    prog->valid_[w] = w + 1 == prog->words_ ? valid_tail : ~std::uint64_t{0};
  }
  prog->dim_used_.assign(prog->dims_, 0);
  for (std::size_t i = 0; i < prog->dims_; ++i) {
    for (std::size_t c = 0; c < prog->class_count_; ++c) {
      const std::uint64_t* row =
          &prog->dim_rows_[(i * prog->class_count_ + c) * prog->row_stride_];
      for (std::size_t w = 0; w < prog->words_; ++w) {
        if (row[w] != 0) {
          prog->dim_used_[i] |= static_cast<std::uint16_t>(1u << c);
          break;
        }
      }
    }
  }
  prog->report_elem_ = s.report_elem;
  prog->report_code_ = s.report_code;

  // Counter planes: biased so that count >= dims <=> a bit at plane >= P.
  const auto p = static_cast<std::uint32_t>(std::bit_width(s.dims - 1));
  prog->cond_plane_ = p;
  prog->planes_ = p + 2;
  prog->bias_ = (std::uint64_t{1} << p) - s.dims;
  return prog;
}

BatchProgramState BatchProgram::state() const {
  BatchProgramState s;
  s.family = family_;
  s.lanes = macro_count_;
  s.dims = dims_;
  s.levels = levels_;
  s.class_count = class_count_;
  s.sof = sof_;
  s.eof = eof_;
  s.sym_classes = sym_classes_;
  // Un-pad back to the canonical words_-sized rows: the serialized image
  // (and therefore the artifact format) is independent of the in-memory
  // stride and of any lane width.
  s.dim_rows.assign(dims_ * class_count_ * words_, 0);
  for (std::size_t r = 0; r < dims_ * class_count_; ++r) {
    std::copy_n(dim_rows_.begin() + static_cast<std::ptrdiff_t>(
                                        r * row_stride_),
                words_,
                s.dim_rows.begin() + static_cast<std::ptrdiff_t>(r * words_));
  }
  s.report_elem = report_elem_;
  s.report_code = report_code_;
  return s;
}

BatchSimulator::BatchSimulator(std::shared_ptr<const BatchProgram> program,
                               LaneWidth lane_width)
    : program_(std::move(program)) {
  if (program_ == nullptr) {
    throw std::invalid_argument(
        "BatchSimulator: null program (try_compile declined?)");
  }
  const BatchProgram& p = *program_;
  kernels_ = resolve_lane_kernels(lane_width);
  // Words swept per cycle: the canonical count rounded up to this width's
  // block. The program pads its rows and valid masks to kLaneBlockWords
  // (>= any block), so the sweep never reads past storage, the pad words
  // are zero, and the 64-bit path does exactly the work it always did.
  const std::size_t block = kernels_.block_words();
  eff_words_ = (p.words_ + block - 1) / block * block;
  chain_.assign(p.dim_words_, 0);
  match_ring_.assign(p.levels_ * eff_words_, 0);
  planes_.assign(p.planes_ * eff_words_, 0);
  cond_prev_.assign(eff_words_, 0);
  pulse_.assign(eff_words_, 0);
  counter_out_.assign(eff_words_, 0);
  match_scratch_.assign(eff_words_, 0);
  reset();
}

void BatchSimulator::reset() {
  const BatchProgram& p = *program_;
  cycle_ = 0;
  guard_prev_ = false;
  sort_prev_ = false;
  bridge_ = 0;
  ring_pos_ = 0;
  std::fill(chain_.begin(), chain_.end(), 0);
  std::fill(match_ring_.begin(), match_ring_.end(), 0);
  std::fill(cond_prev_.begin(), cond_prev_.end(), 0);
  std::fill(pulse_.begin(), pulse_.end(), 0);
  std::fill(counter_out_.begin(), counter_out_.end(), 0);
  for (std::uint32_t q = 0; q < p.planes_; ++q) {
    const bool bias_bit = (p.bias_ >> q) & 1;
    for (std::size_t w = 0; w < eff_words_; ++w) {
      planes_[q * eff_words_ + w] = bias_bit ? p.valid_[w] : 0;
    }
  }
  reports_.clear();
}

void BatchSimulator::step(std::uint8_t symbol) {
  const BatchProgram& p = *program_;
  const std::size_t words = p.words_;
  ++cycle_;

  // 1. Report states: enabled by the counter outputs of the previous cycle
  //    and matching every symbol. Ascending lane order matches the
  //    reference simulator's counter-slot propagation order.
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = counter_out_[w];
    while (bits != 0) {
      const std::size_t m = w * 64 + static_cast<std::size_t>(
                                          std::countr_zero(bits));
      bits &= bits - 1;
      reports_.push_back({cycle_, p.report_elem_[m], p.report_code_[m]});
    }
  }
  // 2. Counter outputs THIS cycle = the pulses staged at the end of the
  //    previous cycle (pulse mode: one cycle, then gone).
  counter_out_.swap(pulse_);

  // 3. Scalar (lane-uniform) state: guard, backbone wavefronts, bridge,
  //    sort, eof. The backbone doubles as the match-enable mask: dim i's
  //    matching states share their predecessor with chain state i.
  const bool guard_now = symbol == p.sof_;
  const std::uint64_t chain_top =
      (chain_[p.dim_words_ - 1] >> ((p.dims_ - 1) & 63)) & 1;
  std::uint64_t carry = guard_prev_ ? 1 : 0;
  for (std::size_t w = 0; w < p.dim_words_; ++w) {
    const std::uint64_t next_carry = chain_[w] >> 63;
    chain_[w] = (chain_[w] << 1) | carry;
    carry = next_carry;
  }
  chain_[p.dim_words_ - 1] &= p.chain_tail_;
  guard_prev_ = guard_now;

  const bool bridge_out = (bridge_ >> (p.levels_ - 1)) & 1;
  const bool sort_now = symbol != p.eof_ && (bridge_out || sort_prev_);
  const bool eof_now = symbol == p.eof_ && sort_prev_;
  bridge_ = ((bridge_ << 1) | chain_top) &
            ((std::uint64_t{1} << p.levels_) - 1);

  // 4. Packed match word: OR the lane-mask rows of every (enabled
  //    dimension, accepted class) pair. The rows of one dimension
  //    partition the live lanes, so no complement or tail masking is
  //    needed; usually exactly one dimension (the wavefront) is enabled.
  //    Rows live at stride row_stride_ and are zero-padded, so the kernel
  //    sweeps eff_words_ whole blocks.
  std::fill(match_scratch_.begin(), match_scratch_.end(), 0);
  const std::uint16_t accept = p.sym_classes_[symbol];
  if (accept != 0) {
    for (std::size_t w = 0; w < p.dim_words_; ++w) {
      std::uint64_t bits = chain_[w];
      while (bits != 0) {
        const std::size_t dim = w * 64 + static_cast<std::size_t>(
                                             std::countr_zero(bits));
        bits &= bits - 1;
        std::uint16_t hit = accept & p.dim_used_[dim];
        const std::uint64_t* rows =
            &p.dim_rows_[dim * p.class_count_ * p.row_stride_];
        while (hit != 0) {
          const auto c = static_cast<std::size_t>(std::countr_zero(hit));
          hit &= static_cast<std::uint16_t>(hit - 1);
          kernels_.or_rows(match_scratch_.data(), rows + c * p.row_stride_,
                           eff_words_);
        }
      }
    }
  }

  // 5. Counter updates. The collector tree delays the ORed match word by L
  //    cycles (ring buffer); the sort/eof states add uniform enable/reset.
  //    Counts are bit-sliced: ripple-carry add of the packed increment mask,
  //    saturating adds past the top plane (only >= threshold is observable).
  //    The kernel executes the whole dataflow one lane-word block at a
  //    time (see lane_kernels_impl.hpp); padding lanes have valid = 0, so
  //    they never increment, reset or pulse.
  LaneCounterCtx ctx;
  ctx.ring = &match_ring_[ring_pos_ * eff_words_];
  ctx.scratch = match_scratch_.data();
  ctx.planes = planes_.data();
  ctx.cond_prev = cond_prev_.data();
  ctx.pulse = pulse_.data();
  ctx.valid = p.valid_.data();
  ctx.words = eff_words_;
  ctx.plane_count = p.planes_;
  ctx.cond_plane = p.cond_plane_;
  ctx.bias = p.bias_;
  ctx.sort_now = sort_now;
  ctx.eof_now = eof_now;
  kernels_.counter_update(ctx);
  ring_pos_ = (ring_pos_ + 1) % p.levels_;
  sort_prev_ = sort_now;
}

std::vector<ReportEvent> BatchSimulator::run(
    std::span<const std::uint8_t> stream) {
  reset();
  return run_continue(stream);
}

std::vector<ReportEvent> BatchSimulator::run_continue(
    std::span<const std::uint8_t> stream) {
  const std::size_t first_new = reports_.size();
  for (const std::uint8_t symbol : stream) {
    step(symbol);
  }
  return {reports_.begin() + static_cast<std::ptrdiff_t>(first_new),
          reports_.end()};
}

std::vector<ReportEvent> BatchSimulator::run(
    std::span<const std::uint8_t> stream, const util::RunControl& control) {
  reset();
  return run_continue(stream, control);
}

std::vector<ReportEvent> BatchSimulator::run_continue(
    std::span<const std::uint8_t> stream, const util::RunControl& control) {
  if (!control.engaged() && !util::FaultInjector::armed()) {
    return run_continue(stream);
  }
  const std::size_t first_new = reports_.size();
  const std::uint64_t period =
      control.checkpoint_period > 0 ? control.checkpoint_period : stream.size();
  std::uint64_t since = 0;
  for (const std::uint8_t symbol : stream) {
    step(symbol);
    if (++since >= period) {
      since = 0;
      control.checkpoint();
      util::FaultInjector::check(util::kFaultBatchFrame, control.fault_key);
    }
  }
  return {reports_.begin() + static_cast<std::ptrdiff_t>(first_new),
          reports_.end()};
}

}  // namespace apss::apsim
