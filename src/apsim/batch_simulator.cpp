#include "apsim/batch_simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <stdexcept>

namespace apss::apsim {

using anml::CounterPort;
using anml::Element;
using anml::ElementId;
using anml::ElementKind;
using anml::StartKind;
using anml::SymbolSet;

namespace {

/// Structural role of an element inside the macro set.
enum class Role : std::uint8_t {
  kUnassigned,
  kGuard,
  kChain,
  kMatch,
  kCollector,
  kBridge,
  kSort,
  kEof,
  kCounter,
  kReport,
};

struct Slot {
  Role role = Role::kUnassigned;
  std::uint32_t macro = 0;
  std::uint32_t pos = 0;
};

/// Returns the only symbol of a single-symbol class, or -1.
int single_symbol(const SymbolSet& s) {
  if (s.count() != 1) {
    return -1;
  }
  for (int sym = 0; sym < 256; ++sym) {
    if (s.test(static_cast<std::uint8_t>(sym))) {
      return sym;
    }
  }
  return -1;
}

// Required-out-edge bookkeeping bits (per role; see check loop below).
constexpr std::uint8_t kSawFirst = 1;    // chain succ / collector parent / ...
constexpr std::uint8_t kSawSecond = 2;   // match succ / counter enable
constexpr std::uint8_t kSawThird = 4;    // sort -> eof

}  // namespace

std::shared_ptr<const BatchProgram> BatchProgram::try_compile(
    const anml::AutomataNetwork& network,
    std::span<const HammingMacroSlots> macros, SimOptions options,
    std::string* reason) {
  const auto fail = [&](const std::string& why) {
    if (reason != nullptr) {
      *reason = why;
    }
    return std::shared_ptr<const BatchProgram>{};
  };

  if (options.max_counter_increment != 1) {
    return fail("bit-parallel backend requires max_counter_increment == 1 "
                "(enables must OR together)");
  }
  if (macros.empty()) {
    return fail("no macros");
  }
  const std::size_t n = macros.size();
  const std::size_t dims = macros[0].match.size();
  const std::size_t levels = macros[0].collector_levels;
  if (dims == 0) {
    return fail("macro has zero dimensions");
  }
  if (levels == 0 || levels > 63) {
    return fail("collector depth outside [1, 63]");
  }

  // --- Assign every element a (role, macro, position) ----------------------
  std::vector<Slot> slots(network.size());
  const auto assign = [&](ElementId id, Role role, std::size_t macro,
                          std::size_t pos) {
    if (id >= network.size() || slots[id].role != Role::kUnassigned) {
      return false;
    }
    slots[id] = {role, static_cast<std::uint32_t>(macro),
                 static_cast<std::uint32_t>(pos)};
    return true;
  };
  for (std::size_t m = 0; m < n; ++m) {
    const HammingMacroSlots& s = macros[m];
    if (s.match.size() != dims || s.chain.size() != dims ||
        s.collector_levels != levels || s.bridge.size() != levels) {
      return fail("macros are not structurally identical");
    }
    bool ok = assign(s.guard, Role::kGuard, m, 0) &&
              assign(s.sort_state, Role::kSort, m, 0) &&
              assign(s.eof_state, Role::kEof, m, 0) &&
              assign(s.counter, Role::kCounter, m, 0) &&
              assign(s.report, Role::kReport, m, 0);
    for (std::size_t i = 0; ok && i < dims; ++i) {
      ok = assign(s.chain[i], Role::kChain, m, i) &&
           assign(s.match[i], Role::kMatch, m, i);
    }
    for (std::size_t i = 0; ok && i < s.collectors.size(); ++i) {
      ok = assign(s.collectors[i], Role::kCollector, m, i);
    }
    for (std::size_t i = 0; ok && i < levels; ++i) {
      ok = assign(s.bridge[i], Role::kBridge, m, i);
    }
    if (!ok) {
      return fail("macro slot ids out of range or shared between macros");
    }
  }
  for (ElementId id = 0; id < network.size(); ++id) {
    if (slots[id].role == Role::kUnassigned) {
      return fail("network contains elements outside the macro set");
    }
  }

  // --- Element property checks + match-class discovery ---------------------
  int sof = -1;
  int eof = -1;
  std::vector<SymbolSet> classes;  // at most two distinct match classes
  for (ElementId id = 0; id < network.size(); ++id) {
    const Element& e = network.element(id);
    const Role role = slots[id].role;
    const bool is_counter = role == Role::kCounter;
    if (!is_counter && e.kind != ElementKind::kSte) {
      return fail("non-STE element in an STE slot");
    }
    if (!is_counter && e.start !=
        (role == Role::kGuard ? StartKind::kAllInput : StartKind::kNone)) {
      return fail("unexpected start kind");
    }
    if (e.reporting != (role == Role::kReport)) {
      return fail("reporting flag on an unexpected element");
    }
    switch (role) {
      case Role::kGuard: {
        const int sym = single_symbol(e.symbols);
        if (sym < 0 || (sof >= 0 && sym != sof)) {
          return fail("guard class is not one uniform symbol");
        }
        sof = sym;
        break;
      }
      case Role::kEof: {
        const int sym = single_symbol(e.symbols);
        if (sym < 0 || (eof >= 0 && sym != eof)) {
          return fail("eof class is not one uniform symbol");
        }
        eof = sym;
        break;
      }
      case Role::kMatch: {
        if (std::find(classes.begin(), classes.end(), e.symbols) ==
            classes.end()) {
          classes.push_back(e.symbols);
          if (classes.size() > 2) {
            return fail("more than two distinct match classes");
          }
        }
        break;
      }
      case Role::kChain:
      case Role::kCollector:
      case Role::kBridge:
      case Role::kReport:
        if (!e.symbols.is_all()) {
          return fail("backbone/collector/bridge/report class must be *");
        }
        break;
      case Role::kSort:
        break;  // checked against eof below
      case Role::kCounter:
        if (e.kind != ElementKind::kCounter ||
            e.mode != anml::CounterMode::kPulse ||
            e.threshold != static_cast<std::uint32_t>(dims)) {
          return fail("counter is not pulse-mode with threshold == dims");
        }
        break;
      case Role::kUnassigned:
        break;
    }
  }
  if (sof < 0 || eof < 0 || sof == eof) {
    return fail("guard/eof symbols missing or identical");
  }
  for (std::size_t m = 0; m < n; ++m) {
    if (!(network.element(macros[m].sort_state).symbols ==
          SymbolSet::all_except(static_cast<std::uint8_t>(eof)))) {
      return fail("sort class must be all-except-eof");
    }
  }

  // --- Edge checks ----------------------------------------------------------
  // Every edge must be one of the macro's internal connections; collector
  // levels are recomputed from the wiring so the delay-line equivalence
  // (every match -> counter path has length exactly L) is verified, not
  // assumed.
  std::vector<std::uint8_t> saw(network.size(), 0);
  std::vector<std::int32_t> collector_level(network.size(), -1);
  std::vector<std::vector<ElementId>> collector_in(network.size());
  for (const anml::Edge& edge : network.edges()) {
    if (edge.from >= network.size() || edge.to >= network.size()) {
      return fail("edge endpoint out of range");
    }
    const Slot& a = slots[edge.from];
    const Slot& b = slots[edge.to];
    if (a.macro != b.macro) {
      return fail("edge crosses macros");
    }
    const bool reset_port = edge.port == CounterPort::kReset;
    if (edge.port == CounterPort::kThreshold) {
      return fail("dynamic-threshold edge");
    }
    bool legal = false;
    switch (a.role) {
      case Role::kGuard:
        legal = (b.role == Role::kChain || b.role == Role::kMatch) &&
                b.pos == 0 && !reset_port;
        if (legal) {
          saw[edge.from] |= b.role == Role::kChain ? kSawFirst : kSawSecond;
        }
        break;
      case Role::kChain:
        if (a.pos + 1 < dims) {
          legal = (b.role == Role::kChain || b.role == Role::kMatch) &&
                  b.pos == a.pos + 1 && !reset_port;
          if (legal) {
            saw[edge.from] |= b.role == Role::kChain ? kSawFirst : kSawSecond;
          }
        } else {
          legal = b.role == Role::kBridge && b.pos == 0 && !reset_port;
          if (legal) {
            saw[edge.from] |= kSawFirst;
          }
        }
        break;
      case Role::kMatch:
        legal = b.role == Role::kCollector && !reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
          collector_in[edge.to].push_back(edge.from);
        }
        break;
      case Role::kCollector:
        legal = (b.role == Role::kCollector || b.role == Role::kCounter) &&
                !reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
          if (b.role == Role::kCollector) {
            collector_in[edge.to].push_back(edge.from);
          } else {
            saw[edge.from] |= kSawSecond;  // root: feeds the counter directly
          }
        }
        break;
      case Role::kBridge:
        if (a.pos + 1 < levels) {
          legal = b.role == Role::kBridge && b.pos == a.pos + 1 && !reset_port;
        } else {
          legal = b.role == Role::kSort && !reset_port;
        }
        if (legal) {
          saw[edge.from] |= kSawFirst;
        }
        break;
      case Role::kSort:
        legal = !reset_port &&
                ((b.role == Role::kSort && edge.to == edge.from) ||
                 b.role == Role::kCounter || b.role == Role::kEof);
        if (legal) {
          saw[edge.from] |= b.role == Role::kSort    ? kSawFirst
                            : b.role == Role::kCounter ? kSawSecond
                                                       : kSawThird;
        }
        break;
      case Role::kEof:
        legal = b.role == Role::kCounter && reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
        }
        break;
      case Role::kCounter:
        legal = b.role == Role::kReport && !reset_port;
        if (legal) {
          saw[edge.from] |= kSawFirst;
        }
        break;
      case Role::kReport:
      case Role::kUnassigned:
        legal = false;
        break;
    }
    if (!legal) {
      return fail("unexpected edge for the Hamming/sorting macro shape");
    }
  }

  // Collector depth: slots list collectors in creation order (level by
  // level), so inputs are always assigned before their parent is visited.
  for (std::size_t m = 0; m < n; ++m) {
    for (const ElementId c : macros[m].collectors) {
      if (collector_in[c].empty()) {
        return fail("collector with no inputs");
      }
      std::int32_t level = -2;
      for (const ElementId src : collector_in[c]) {
        const std::int32_t in_level =
            slots[src].role == Role::kMatch ? 0 : collector_level[src];
        if (in_level < 0 || (level != -2 && in_level != level)) {
          return fail("collector tree depth is not uniform");
        }
        level = in_level;
      }
      collector_level[c] = level + 1;
      const bool is_root = (saw[c] & kSawSecond) != 0;
      if (is_root != (collector_level[c] == static_cast<std::int32_t>(levels))) {
        return fail("collector root depth != collector_levels");
      }
    }
  }

  // Required out-edges present?
  for (ElementId id = 0; id < network.size(); ++id) {
    std::uint8_t need = 0;
    switch (slots[id].role) {
      case Role::kGuard: need = kSawFirst | kSawSecond; break;
      case Role::kChain:
        need = slots[id].pos + 1 < dims ? (kSawFirst | kSawSecond) : kSawFirst;
        break;
      case Role::kMatch: need = kSawFirst; break;
      case Role::kCollector: need = kSawFirst; break;
      case Role::kBridge: need = kSawFirst; break;
      case Role::kSort: need = kSawFirst | kSawSecond | kSawThird; break;
      case Role::kEof: need = kSawFirst; break;
      case Role::kCounter: need = kSawFirst; break;
      case Role::kReport:
      case Role::kUnassigned: need = 0; break;
    }
    if ((saw[id] & need) != need) {
      return fail("macro is missing a required connection");
    }
  }

  // --- Compile --------------------------------------------------------------
  auto prog = std::shared_ptr<BatchProgram>(new BatchProgram());
  prog->macro_count_ = n;
  prog->dims_ = dims;
  prog->levels_ = levels;
  prog->words_ = (n + 63) / 64;
  prog->dim_words_ = (dims + 63) / 64;
  prog->valid_tail_ = (n % 64) ? (std::uint64_t{1} << (n % 64)) - 1
                               : ~std::uint64_t{0};
  prog->chain_tail_ = (dims % 64) ? (std::uint64_t{1} << (dims % 64)) - 1
                                  : ~std::uint64_t{0};
  prog->sof_ = static_cast<std::uint8_t>(sof);
  prog->eof_ = static_cast<std::uint8_t>(eof);

  const SymbolSet empty;
  const SymbolSet& class0 = classes[0];
  const SymbolSet& class1 = classes.size() > 1 ? classes[1] : empty;
  for (int sym = 0; sym < 256; ++sym) {
    const auto s = static_cast<std::uint8_t>(sym);
    prog->sym_kind_[s] = static_cast<std::uint8_t>(
        (class0.test(s) ? 1u : 0u) | (class1.test(s) ? 2u : 0u));
  }
  prog->dim_class1_.assign(dims * prog->words_, 0);
  prog->report_elem_.resize(n);
  prog->report_code_.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    prog->report_elem_[m] = macros[m].report;
    prog->report_code_[m] = network.element(macros[m].report).report_code;
    for (std::size_t i = 0; i < dims; ++i) {
      if (classes.size() > 1 &&
          network.element(macros[m].match[i]).symbols == class1) {
        prog->dim_class1_[i * prog->words_ + m / 64] |= std::uint64_t{1}
                                                        << (m % 64);
      }
    }
  }

  // Counter planes: biased so that count >= dims <=> a bit at plane >= P.
  const auto p = static_cast<std::uint32_t>(std::bit_width(dims - 1));
  prog->cond_plane_ = p;
  prog->planes_ = p + 2;
  prog->bias_ = (std::uint64_t{1} << p) - dims;
  return prog;
}

BatchSimulator::BatchSimulator(std::shared_ptr<const BatchProgram> program)
    : program_(std::move(program)) {
  if (program_ == nullptr) {
    throw std::invalid_argument(
        "BatchSimulator: null program (try_compile declined?)");
  }
  const BatchProgram& p = *program_;
  chain_.assign(p.dim_words_, 0);
  match_ring_.assign(p.levels_ * p.words_, 0);
  planes_.assign(p.planes_ * p.words_, 0);
  cond_prev_.assign(p.words_, 0);
  pulse_.assign(p.words_, 0);
  counter_out_.assign(p.words_, 0);
  match_scratch_.assign(p.words_, 0);
  reset();
}

void BatchSimulator::reset() {
  const BatchProgram& p = *program_;
  cycle_ = 0;
  guard_prev_ = false;
  sort_prev_ = false;
  bridge_ = 0;
  ring_pos_ = 0;
  std::fill(chain_.begin(), chain_.end(), 0);
  std::fill(match_ring_.begin(), match_ring_.end(), 0);
  std::fill(cond_prev_.begin(), cond_prev_.end(), 0);
  std::fill(pulse_.begin(), pulse_.end(), 0);
  std::fill(counter_out_.begin(), counter_out_.end(), 0);
  for (std::uint32_t q = 0; q < p.planes_; ++q) {
    const bool bias_bit = (p.bias_ >> q) & 1;
    for (std::size_t w = 0; w < p.words_; ++w) {
      planes_[q * p.words_ + w] = bias_bit ? p.valid_word(w) : 0;
    }
  }
  reports_.clear();
}

void BatchSimulator::step(std::uint8_t symbol) {
  const BatchProgram& p = *program_;
  const std::size_t words = p.words_;
  ++cycle_;

  // 1. Report states: enabled by the counter outputs of the previous cycle
  //    and matching every symbol. Ascending macro order matches the
  //    reference simulator's counter-slot propagation order.
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = counter_out_[w];
    while (bits != 0) {
      const std::size_t m = w * 64 + static_cast<std::size_t>(
                                          std::countr_zero(bits));
      bits &= bits - 1;
      reports_.push_back({cycle_, p.report_elem_[m], p.report_code_[m]});
    }
  }
  // 2. Counter outputs THIS cycle = the pulses staged at the end of the
  //    previous cycle (pulse mode: one cycle, then gone).
  counter_out_.swap(pulse_);

  // 3. Scalar (macro-uniform) state: guard, backbone wavefronts, bridge,
  //    sort, eof. The backbone doubles as the match-enable mask: dim i's
  //    matching state shares its predecessor with chain state i.
  const bool guard_now = symbol == p.sof_;
  const std::uint64_t chain_top =
      (chain_[p.dim_words_ - 1] >> ((p.dims_ - 1) & 63)) & 1;
  std::uint64_t carry = guard_prev_ ? 1 : 0;
  for (std::size_t w = 0; w < p.dim_words_; ++w) {
    const std::uint64_t next_carry = chain_[w] >> 63;
    chain_[w] = (chain_[w] << 1) | carry;
    carry = next_carry;
  }
  chain_[p.dim_words_ - 1] &= p.chain_tail_;
  guard_prev_ = guard_now;

  const bool bridge_out = (bridge_ >> (p.levels_ - 1)) & 1;
  const bool sort_now = symbol != p.eof_ && (bridge_out || sort_prev_);
  const bool eof_now = symbol == p.eof_ && sort_prev_;
  bridge_ = ((bridge_ << 1) | chain_top) &
            ((std::uint64_t{1} << p.levels_) - 1);

  // 4. Packed match word: OR the per-dimension macro masks of every enabled
  //    dimension (usually exactly one — the wavefront position).
  std::fill(match_scratch_.begin(), match_scratch_.end(), 0);
  const std::uint8_t kind = p.sym_kind_[symbol];
  if (kind != 0) {
    bool any = false;
    bool negated = false;
    for (std::size_t w = 0; w < p.dim_words_; ++w) {
      std::uint64_t bits = chain_[w];
      while (bits != 0) {
        const std::size_t dim = w * 64 + static_cast<std::size_t>(
                                             std::countr_zero(bits));
        bits &= bits - 1;
        any = true;
        if (kind == 3) {
          break;  // both classes accept: every macro matches
        }
        const std::uint64_t* row = &p.dim_class1_[dim * words];
        if (kind == 2) {
          for (std::size_t i = 0; i < words; ++i) {
            match_scratch_[i] |= row[i];
          }
        } else {  // kind == 1: macros using the first class = complement
          negated = true;
          for (std::size_t i = 0; i < words; ++i) {
            match_scratch_[i] |= ~row[i];
          }
        }
      }
      if (any && kind == 3) {
        break;
      }
    }
    if (any && kind == 3) {
      for (std::size_t i = 0; i < words; ++i) {
        match_scratch_[i] = p.valid_word(i);
      }
    } else if (negated) {
      match_scratch_[words - 1] &= p.valid_tail_;
    }
  }

  // 5. Counter updates. The collector tree delays the ORed match word by L
  //    cycles (ring buffer); the sort/eof states add uniform enable/reset.
  //    Counts are bit-sliced: ripple-carry add of the packed increment mask,
  //    saturating adds past the top plane (only >= threshold is observable).
  std::uint64_t* ring = &match_ring_[ring_pos_ * words];
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t roots = ring[w];
    ring[w] = match_scratch_[w];
    const std::uint64_t reset = eof_now ? p.valid_word(w) : 0;
    const std::uint64_t inc =
        (roots | (sort_now ? p.valid_word(w) : 0)) & ~reset;
    std::uint64_t add = inc;
    for (std::uint32_t q = 0; q < p.planes_ && add != 0; ++q) {
      std::uint64_t& plane = planes_[q * words + w];
      const std::uint64_t sum = plane ^ add;
      add &= plane;
      plane = sum;
    }
    if (add != 0) {  // overflow: pin the count at its (>= threshold) max
      for (std::uint32_t q = 0; q < p.planes_; ++q) {
        planes_[q * words + w] |= add;
      }
    }
    if (reset != 0) {
      for (std::uint32_t q = 0; q < p.planes_; ++q) {
        std::uint64_t& plane = planes_[q * words + w];
        plane = (plane & ~reset) | (((p.bias_ >> q) & 1) ? reset : 0);
      }
    }
    const std::uint64_t cond = planes_[p.cond_plane_ * words + w] |
                               planes_[(p.cond_plane_ + 1) * words + w];
    pulse_[w] = cond & ~cond_prev_[w];  // rising edge -> pulse next cycle
    cond_prev_[w] = cond;
  }
  ring_pos_ = (ring_pos_ + 1) % p.levels_;
  sort_prev_ = sort_now;
}

std::vector<ReportEvent> BatchSimulator::run(
    std::span<const std::uint8_t> stream) {
  reset();
  return run_continue(stream);
}

std::vector<ReportEvent> BatchSimulator::run_continue(
    std::span<const std::uint8_t> stream) {
  const std::size_t first_new = reports_.size();
  for (const std::uint8_t symbol : stream) {
    step(symbol);
  }
  return {reports_.begin() + static_cast<std::ptrdiff_t>(first_new),
          reports_.end()};
}

}  // namespace apss::apsim
