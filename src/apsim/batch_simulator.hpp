#pragma once
// Bit-parallel batch execution of homogeneous macro configurations (the
// Simultaneous-FA idea applied to the paper's Sec. III design): because
// every macro in a board configuration is structurally identical, the
// per-macro state fits ONE BIT per element slot, and a whole configuration
// advances with word-wide AND/OR/shift operations — 64 macros per machine
// word per operation.
//
// Three macro shapes compile (docs/OPTIMIZATIONS.md details each):
//
//  * the plain Hamming/sorting macro family (Figs. 2a/2b, one macro per
//    dataset vector — core::append_hamming_macro),
//  * the vector-packed shape (Fig. 5 / Sec. VI-A, several vectors overlaid
//    on a shared ladder — core::build_packed_network), and
//  * the stream-multiplexed shape (Fig. 6 / Sec. VI-B, per-bit-slice macro
//    replicas — core::build_multiplexed_network), which is the plain shape
//    with per-slice matching classes.
//
// All three reduce to the same compiled form, executed by one interpreter.
// A "lane" is one (counter, report) pair — a plain or multiplexed macro, or
// one packed vector within its group. What makes the execution exact (see
// docs/SIMULATOR_SEMANTICS.md for the contract):
//
//  * The "*" backbone, guard, bridge, sort and EOF states match classes that
//    do not depend on the encoded vector, so their activity is IDENTICAL
//    across lanes — a handful of scalar bits per cycle. (Packed groups share
//    these states physically; plain macros replicate them; either way the
//    activity is uniform.)
//  * Only the per-dimension matching states differ between lanes, and each
//    lane uses exactly one of at most kMaxBatchMatchClasses distinct symbol
//    classes per dimension (bit = 0 / bit = 1, per bit slice). A per-symbol
//    16-bit class-acceptance mask plus one packed lane mask per (dimension,
//    class) yields the packed match word in O(words) per enabled dimension.
//  * With the stock per-cycle counter-increment cap of 1, simultaneous
//    count-enable inputs OR together, so the collector reduction tree is
//    exactly an L-cycle delay line on the OR of the matching states: the
//    packed match word is pushed through a ring buffer of L word-vectors.
//    This holds per lane even when packed lanes share leaf states, because
//    every leaf-to-counter path in every lane's tree has length exactly L.
//  * The distance counters are bit-sliced: counts live in bit planes biased
//    by 2^P - threshold, so "count >= threshold" is a read of the top
//    planes, an increment is a ripple-carry add of a packed mask, and
//    counters that run past the representable range saturate (legal, since
//    only the >= threshold predicate and reset are observable here).
//
// The program compiler verifies all of this structurally and refuses
// anything else (counters with caps > 1, boolean gates, dynamic thresholds,
// foreign elements, irregular collector trees, lanes out of counter-id
// order...): callers fall back to the cycle-accurate apsim::Simulator,
// which stays the semantic reference. BatchSimulator emits bit-identical
// ReportEvent streams, including within-cycle ordering (ascending lane
// index == ascending counter element id, matching the reference
// simulator's counter-slot propagation order).

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anml/network.hpp"
#include "apsim/lane_word.hpp"
#include "apsim/simulator.hpp"

namespace apss::apsim {

/// Most distinct matching-state symbol classes a compiled configuration may
/// use. Two (bit = 0 / bit = 1) cover the plain and packed shapes; stream
/// multiplexing needs two per bit slice (up to 14); 16 leaves headroom
/// while keeping the per-symbol acceptance mask one 16-bit word.
inline constexpr std::size_t kMaxBatchMatchClasses = 16;

/// Which macro shape a BatchProgram was compiled from. Execution is
/// shape-neutral; the family feeds engine statistics and fallback
/// reporting (core::BackendCompileStats), never dispatch.
enum class MacroFamily : std::uint8_t {
  kHamming,      ///< plain Hamming/sorting macros (Figs. 2a/2b)
  kPacked,       ///< vector-packed groups (Fig. 5 / Sec. VI-A)
  kMultiplexed,  ///< per-bit-slice macro replicas (Fig. 6 / Sec. VI-B)
};

const char* to_string(MacroFamily family) noexcept;

/// The complete stored state of a compiled BatchProgram — the
/// field-for-field image the on-disk artifact codec (src/artifact)
/// serializes. Derived quantities (word counts, tail masks, counter plane
/// layout) are intentionally absent: BatchProgram::from_state recomputes
/// them and revalidates every structural invariant, so no decoded byte
/// stream can construct a program that try_compile could not have
/// produced shape-wise (docs/ARTIFACTS.md specifies the invariants).
struct BatchProgramState {
  MacroFamily family = MacroFamily::kHamming;
  std::uint64_t lanes = 0;   ///< macro_count()
  std::uint64_t dims = 0;
  std::uint64_t levels = 1;  ///< collector tree depth L
  std::uint64_t class_count = 0;
  std::uint8_t sof = 0;
  std::uint8_t eof = 0;
  /// Per-symbol classifier: bit c = match class c accepts the symbol.
  std::array<std::uint16_t, 256> sym_classes{};
  /// dims x class_count x ceil(lanes/64) packed lane-mask rows; the rows of
  /// one dimension partition the live lanes.
  std::vector<std::uint64_t> dim_rows;
  std::vector<anml::ElementId> report_elem;  ///< per lane
  std::vector<std::uint32_t> report_code;    ///< per lane

  bool operator==(const BatchProgramState&) const = default;
};

/// Element ids of one plain Hamming/sorting macro inside a configuration
/// network (a layering-neutral mirror of core::MacroLayout; see
/// core::batch_slots()). Spans must stay valid for the try_compile call
/// only. Multiplexed macros (core::build_multiplexed_network) use this
/// same shape — only their matching-state classes differ per slice.
struct HammingMacroSlots {
  anml::ElementId guard = anml::kInvalidElement;
  std::span<const anml::ElementId> chain;       ///< "*" backbone, one per dim
  std::span<const anml::ElementId> match;       ///< matching state per dim
  std::span<const anml::ElementId> collectors;  ///< reduction-tree nodes
  std::span<const anml::ElementId> bridge;      ///< sort-alignment delay chain
  anml::ElementId sort_state = anml::kInvalidElement;
  anml::ElementId eof_state = anml::kInvalidElement;
  anml::ElementId counter = anml::kInvalidElement;
  anml::ElementId report = anml::kInvalidElement;
  std::size_t collector_levels = 1;  ///< tree depth L
};

/// Element ids of one vector-packed group (a layering-neutral mirror of
/// core::PackedGroupLayout; see core::packed_batch_slots()). The guard,
/// backbone, bridge, sort and EOF states are shared by every vector of the
/// group; each vector keeps its own collectors, counter and report (one
/// LANE each). Spans must stay valid for the try_compile call only.
struct PackedGroupSlots {
  anml::ElementId guard = anml::kInvalidElement;
  std::span<const anml::ElementId> chain;  ///< shared "*" ladder, one per dim
  /// Distinct-value states at each dimension (1 or 2 entries per dim).
  std::span<const std::vector<anml::ElementId>> value_states;
  std::span<const anml::ElementId> bridge;  ///< shared delay chain, L states
  anml::ElementId sort_state = anml::kInvalidElement;
  anml::ElementId eof_state = anml::kInvalidElement;
  std::span<const anml::ElementId> counters;  ///< one per packed vector
  std::span<const anml::ElementId> reports;   ///< one per packed vector
  /// Per packed vector: that vector's collector-tree nodes, level by level.
  std::span<const std::vector<anml::ElementId>> collectors;
  std::size_t collector_levels = 1;  ///< tree depth L (1 for flat collectors)
};

/// Immutable compiled form of one configuration: per-symbol class
/// acceptance mask, per-(dimension, class) lane masks, report identities,
/// counter plane layout. Shareable across threads; each worker wraps it in
/// its own BatchSimulator.
class BatchProgram {
 public:
  /// Verifies that (network, macros) is a supported homogeneous macro
  /// configuration under `options` — the plain Hamming/sorting shape or
  /// its multiplexed per-slice variant — and compiles it. Returns nullptr
  /// (and fills *reason when non-null) if any structural or feature
  /// requirement fails — callers then use the cycle-accurate Simulator.
  static std::shared_ptr<const BatchProgram> try_compile(
      const anml::AutomataNetwork& network,
      std::span<const HammingMacroSlots> macros, SimOptions options,
      std::string* reason = nullptr);

  /// Same contract for the vector-packed shape: every group must share the
  /// guard/backbone/bridge/sort/EOF structure, every lane's collector tree
  /// must reach its counter in exactly collector_levels steps covering each
  /// dimension exactly once, and lanes must appear in ascending counter-id
  /// order (the reference simulator's report order).
  static std::shared_ptr<const BatchProgram> try_compile(
      const anml::AutomataNetwork& network,
      std::span<const PackedGroupSlots> groups, SimOptions options,
      std::string* reason = nullptr);

  /// Rebuilds a program from stored state (the artifact load path).
  /// Validates every invariant the compiler establishes — lane/dimension/
  /// class bounds, row-table geometry, the per-dimension class-partition
  /// property — and returns nullptr (filling *error when non-null) on any
  /// violation; a state that passes is indistinguishable from a freshly
  /// compiled program. try_compile funnels through this too, so the checks
  /// run on every compile, not only on load.
  static std::shared_ptr<const BatchProgram> from_state(
      const BatchProgramState& state, std::string* error = nullptr);

  /// The stored-state image of this program; from_state(state()) rebuilds
  /// an identical program (the round-trip property the artifact tests
  /// assert).
  BatchProgramState state() const;

  /// Lanes in the configuration (= macros for the plain/multiplexed
  /// shapes, = packed vectors summed over groups for the packed shape).
  std::size_t macro_count() const noexcept { return macro_count_; }
  /// Which macro shape this program was compiled from: kPacked for the
  /// packed overload; the plain overload reports kMultiplexed when the
  /// matching classes are slice-ternary pairs spanning more than one bit
  /// slice (the Fig. 6 encoding), else kHamming.
  MacroFamily family() const noexcept { return family_; }
  std::size_t dims() const noexcept { return dims_; }
  std::size_t collector_levels() const noexcept { return levels_; }
  /// 64-bit words per packed lane mask.
  std::size_t words() const noexcept { return words_; }
  /// Distinct matching-state symbol classes (<= kMaxBatchMatchClasses).
  std::size_t match_classes() const noexcept { return class_count_; }
  /// Bit planes held per counter (bias + saturation headroom).
  std::size_t counter_planes() const noexcept { return planes_; }

 private:
  friend class BatchSimulator;
  BatchProgram() = default;

  /// Shape-neutral recognizer output (defined in batch_simulator.cpp):
  /// both try_compile overloads reduce their verified structure to a lane
  /// table, and this shared back-end packs it into a program.
  struct LaneTable;
  static std::shared_ptr<const BatchProgram> compile_lanes(
      const LaneTable& lanes);

  MacroFamily family_ = MacroFamily::kHamming;
  std::size_t macro_count_ = 0;  ///< lanes
  std::size_t dims_ = 0;
  std::size_t levels_ = 1;
  std::size_t words_ = 0;  ///< canonical (unpadded) words per packed lane mask
  /// In-memory words per lane-mask row: words_ rounded up to kLaneBlockWords
  /// so every execution width (64/256/512) divides the storage. The pad
  /// words are zero — no live lane, no class bit, valid mask 0 — which is
  /// what makes them semantically invisible to the kernels. The serialized
  /// state() stays canonical (words_-sized rows), so artifacts never see
  /// the padding.
  std::size_t row_stride_ = 0;
  std::size_t dim_words_ = 0;  ///< words per packed dimension (chain) mask
  std::size_t class_count_ = 0;   ///< distinct matching classes
  std::uint64_t valid_tail_ = 0;  ///< live bits of the last lane word
  std::uint64_t chain_tail_ = 0;  ///< live bits of the last chain word
  std::uint8_t sof_ = 0;          ///< guard symbol (single-symbol class)
  std::uint8_t eof_ = 0;          ///< reset symbol (single-symbol class)
  /// Per-symbol classifier: bit c = match class c accepts the symbol.
  std::array<std::uint16_t, 256> sym_classes_{};
  /// Per dimension: bitmask of the classes some lane uses there.
  std::vector<std::uint16_t> dim_used_;
  /// dims_ x class_count_ x row_stride_: bit l of row (i, c) = lane l's
  /// dim-i matching state uses class c. Rows of one dimension partition the
  /// live lanes (every lane has exactly one class per dimension); the
  /// row_stride_ - words_ pad words of every row are zero.
  std::vector<std::uint64_t> dim_rows_;
  /// row_stride_ words: bit l = lane l is live (zero in the pad words).
  std::vector<std::uint64_t> valid_;
  std::vector<anml::ElementId> report_elem_;  ///< per lane
  std::vector<std::uint32_t> report_code_;    ///< per lane
  std::uint32_t planes_ = 0;      ///< Q: bit planes per counter
  std::uint32_t cond_plane_ = 0;  ///< P: planes >= P <=> count >= threshold
  std::uint64_t bias_ = 0;        ///< 2^P - threshold, loaded on reset
};

/// Executes a BatchProgram with the same streaming interface and the same
/// ReportEvent output as the cycle-accurate Simulator. Cheap to construct
/// (dynamic state only); create one per worker thread.
///
/// The execution lane width is a per-simulator choice (resolve_lane_kernels
/// decides SIMD vs portable at construction); the ReportEvent stream is
/// bit-identical at every width, so a program — or an artifact compiled at
/// one width — runs unchanged at any other.
class BatchSimulator {
 public:
  /// Throws std::invalid_argument on a null program (i.e. a try_compile
  /// result that declined — callers must fall back, not construct).
  /// `lane_width` picks the execution width; kAuto selects the widest
  /// SIMD-backed width this CPU + build supports (the 64-bit scalar path
  /// when none).
  explicit BatchSimulator(std::shared_ptr<const BatchProgram> program,
                          LaneWidth lane_width = LaneWidth::kAuto);

  /// Returns to the pre-stream state (cycle 0, all counts zero).
  void reset();

  /// Consumes one symbol; advances to the next cycle.
  void step(std::uint8_t symbol);

  /// reset() + step over the whole stream; returns collected reports.
  std::vector<ReportEvent> run(std::span<const std::uint8_t> stream);

  /// Runs WITHOUT resetting first — streams are concatenable, matching
  /// Simulator::run_continue.
  std::vector<ReportEvent> run_continue(std::span<const std::uint8_t> stream);

  /// Checkpointed variants (same contract as Simulator::run(stream,
  /// control)): poll the deadline/cancellation token every
  /// `control.checkpoint_period` symbols and fire the "batch.frame" fault
  /// site. Uninstrumented-loop cost when the control is idle and no fault
  /// site is armed.
  std::vector<ReportEvent> run(std::span<const std::uint8_t> stream,
                               const util::RunControl& control);
  std::vector<ReportEvent> run_continue(std::span<const std::uint8_t> stream,
                                        const util::RunControl& control);

  std::uint64_t cycle() const noexcept { return cycle_; }
  const std::vector<ReportEvent>& reports() const noexcept { return reports_; }
  void clear_reports() { reports_.clear(); }
  const BatchProgram& program() const noexcept { return *program_; }

  /// The RESOLVED execution width (never kAuto) and its backing ISA
  /// ("scalar" | "portable" | "avx2" | "avx512").
  LaneWidth lane_width() const noexcept { return kernels_.width; }
  const char* lane_isa() const noexcept { return kernels_.isa; }
  bool lane_simd() const noexcept { return kernels_.simd; }

 private:
  std::shared_ptr<const BatchProgram> program_;
  LaneKernels kernels_;     ///< resolved hot-loop kernels (width + ISA)
  std::size_t eff_words_ = 0;  ///< words_ rounded up to the kernel block

  std::uint64_t cycle_ = 0;
  bool guard_prev_ = false;  ///< guard output last cycle (scalar: uniform)
  bool sort_prev_ = false;   ///< sort-state output last cycle
  std::uint64_t bridge_ = 0;  ///< bridge-chain outputs last cycle, bit k = slot k
  std::vector<std::uint64_t> chain_;  ///< backbone outputs, bit i = dim i
  /// Ring of the last L packed match words (the collector delay line).
  std::vector<std::uint64_t> match_ring_;
  std::size_t ring_pos_ = 0;
  std::vector<std::uint64_t> planes_;     ///< Q x words: bit-sliced counts
  std::vector<std::uint64_t> cond_prev_;  ///< count condition last cycle
  std::vector<std::uint64_t> pulse_;      ///< staged counter pulse
  std::vector<std::uint64_t> counter_out_;  ///< counter outputs last cycle
  std::vector<std::uint64_t> match_scratch_;
  std::vector<ReportEvent> reports_;
};

}  // namespace apss::apsim
