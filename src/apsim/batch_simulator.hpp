#pragma once
// Bit-parallel batch execution of homogeneous Hamming/sorting macro
// configurations (the Simultaneous-FA idea applied to the paper's Sec. III
// design): because every macro in a board configuration is structurally
// identical, the per-macro state fits ONE BIT per element slot, and a whole
// configuration advances with word-wide AND/OR/shift operations — 64 macros
// per machine word per operation.
//
// What makes this exact (see docs/SIMULATOR_SEMANTICS.md for the contract):
//
//  * The "*" backbone, guard, bridge, sort and EOF states match classes that
//    do not depend on the encoded vector, so their activity is IDENTICAL
//    across macros — a handful of scalar bits per cycle.
//  * Only the per-dimension matching states differ between macros, and each
//    dimension uses one of at most two symbol classes (bit = 0 / bit = 1).
//    A per-dimension macro bitmask plus a 256-entry symbol classifier yields
//    the packed match word in O(words) per enabled dimension.
//  * With the stock per-cycle counter-increment cap of 1, simultaneous
//    count-enable inputs OR together, so the collector reduction tree is
//    exactly an L-cycle delay line on the OR of the matching states: the
//    packed match word is pushed through a ring buffer of L word-vectors.
//  * The distance counters are bit-sliced: counts live in bit planes biased
//    by 2^P - threshold, so "count >= threshold" is a read of the top
//    planes, an increment is a ripple-carry add of a packed mask, and
//    counters that run past the representable range saturate (legal, since
//    only the >= threshold predicate and reset are observable here).
//
// The program compiler verifies all of this structurally and refuses
// anything else (counters with caps > 1, boolean gates, dynamic thresholds,
// foreign elements, irregular collector trees...): callers fall back to the
// cycle-accurate apsim::Simulator, which stays the semantic reference.
// BatchSimulator emits bit-identical ReportEvent streams, including
// within-cycle ordering (ascending macro index, matching the reference
// simulator's counter-slot propagation order).

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "anml/network.hpp"
#include "apsim/simulator.hpp"

namespace apss::apsim {

/// Element ids of one Hamming/sorting macro inside a configuration network
/// (a layering-neutral mirror of core::MacroLayout; see
/// core::batch_slots()). Spans must stay valid for the try_compile call
/// only.
struct HammingMacroSlots {
  anml::ElementId guard = anml::kInvalidElement;
  std::span<const anml::ElementId> chain;       ///< "*" backbone, one per dim
  std::span<const anml::ElementId> match;       ///< matching state per dim
  std::span<const anml::ElementId> collectors;  ///< reduction-tree nodes
  std::span<const anml::ElementId> bridge;      ///< sort-alignment delay chain
  anml::ElementId sort_state = anml::kInvalidElement;
  anml::ElementId eof_state = anml::kInvalidElement;
  anml::ElementId counter = anml::kInvalidElement;
  anml::ElementId report = anml::kInvalidElement;
  std::size_t collector_levels = 1;  ///< tree depth L
};

/// Immutable compiled form of one configuration: per-symbol classifier,
/// per-dimension macro bitmasks, report identities, counter plane layout.
/// Shareable across threads; each worker wraps it in its own
/// BatchSimulator.
class BatchProgram {
 public:
  /// Verifies that (network, macros) is a supported homogeneous
  /// Hamming/sorting configuration under `options` and compiles it.
  /// Returns nullptr (and fills *reason when non-null) if any structural or
  /// feature requirement fails — callers then use the cycle-accurate
  /// Simulator.
  static std::shared_ptr<const BatchProgram> try_compile(
      const anml::AutomataNetwork& network,
      std::span<const HammingMacroSlots> macros, SimOptions options,
      std::string* reason = nullptr);

  std::size_t macro_count() const noexcept { return macro_count_; }
  std::size_t dims() const noexcept { return dims_; }
  std::size_t collector_levels() const noexcept { return levels_; }
  /// 64-bit words per packed macro mask.
  std::size_t words() const noexcept { return words_; }
  /// Bit planes held per counter (bias + saturation headroom).
  std::size_t counter_planes() const noexcept { return planes_; }

 private:
  friend class BatchSimulator;
  BatchProgram() = default;

  std::uint64_t valid_word(std::size_t w) const noexcept {
    return w + 1 == words_ ? valid_tail_ : ~std::uint64_t{0};
  }

  std::size_t macro_count_ = 0;
  std::size_t dims_ = 0;
  std::size_t levels_ = 1;
  std::size_t words_ = 0;      ///< words per packed macro mask
  std::size_t dim_words_ = 0;  ///< words per packed dimension (chain) mask
  std::uint64_t valid_tail_ = 0;  ///< live bits of the last macro word
  std::uint64_t chain_tail_ = 0;  ///< live bits of the last chain word
  std::uint8_t sof_ = 0;          ///< guard symbol (single-symbol class)
  std::uint8_t eof_ = 0;          ///< reset symbol (single-symbol class)
  /// Per-symbol classifier: bit 0 = the first match class accepts the
  /// symbol, bit 1 = the second match class accepts it.
  std::array<std::uint8_t, 256> sym_kind_{};
  /// dims_ x words_: bit j of row i = macro j's dim-i matching state uses
  /// the SECOND match class.
  std::vector<std::uint64_t> dim_class1_;
  std::vector<anml::ElementId> report_elem_;  ///< per macro
  std::vector<std::uint32_t> report_code_;    ///< per macro
  std::uint32_t planes_ = 0;      ///< Q: bit planes per counter
  std::uint32_t cond_plane_ = 0;  ///< P: planes >= P <=> count >= threshold
  std::uint64_t bias_ = 0;        ///< 2^P - threshold, loaded on reset
};

/// Executes a BatchProgram with the same streaming interface and the same
/// ReportEvent output as the cycle-accurate Simulator. Cheap to construct
/// (dynamic state only); create one per worker thread.
class BatchSimulator {
 public:
  /// Throws std::invalid_argument on a null program (i.e. a try_compile
  /// result that declined — callers must fall back, not construct).
  explicit BatchSimulator(std::shared_ptr<const BatchProgram> program);

  /// Returns to the pre-stream state (cycle 0, all counts zero).
  void reset();

  /// Consumes one symbol; advances to the next cycle.
  void step(std::uint8_t symbol);

  /// reset() + step over the whole stream; returns collected reports.
  std::vector<ReportEvent> run(std::span<const std::uint8_t> stream);

  /// Runs WITHOUT resetting first — streams are concatenable, matching
  /// Simulator::run_continue.
  std::vector<ReportEvent> run_continue(std::span<const std::uint8_t> stream);

  std::uint64_t cycle() const noexcept { return cycle_; }
  const std::vector<ReportEvent>& reports() const noexcept { return reports_; }
  void clear_reports() { reports_.clear(); }
  const BatchProgram& program() const noexcept { return *program_; }

 private:
  std::shared_ptr<const BatchProgram> program_;

  std::uint64_t cycle_ = 0;
  bool guard_prev_ = false;  ///< guard output last cycle (scalar: uniform)
  bool sort_prev_ = false;   ///< sort-state output last cycle
  std::uint64_t bridge_ = 0;  ///< bridge-chain outputs last cycle, bit k = slot k
  std::vector<std::uint64_t> chain_;  ///< backbone outputs, bit i = dim i
  /// Ring of the last L packed match words (the collector delay line).
  std::vector<std::uint64_t> match_ring_;
  std::size_t ring_pos_ = 0;
  std::vector<std::uint64_t> planes_;     ///< Q x words: bit-sliced counts
  std::vector<std::uint64_t> cond_prev_;  ///< count condition last cycle
  std::vector<std::uint64_t> pulse_;      ///< staged counter pulse
  std::vector<std::uint64_t> counter_out_;  ///< counter outputs last cycle
  std::vector<std::uint64_t> match_scratch_;
  std::vector<ReportEvent> reports_;
};

}  // namespace apss::apsim
