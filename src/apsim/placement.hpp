#pragma once
// Place-and-route resource model (the apadmin-compile stage of the paper).
//
// The paper reports resource use as "total rectangular block area" from the
// AP compiler, and observes that vector-packed designs place but only
// partially route (Sec. VI-A). This model reproduces both effects:
//
//  * CAPACITY: each connected component (one NFA) must fit inside a half
//    core (96 blocks x 256 STEs; 4 counters / 12 booleans / 32 reporting
//    STEs per block). Components are packed into half cores first-fit
//    decreasing; per-half-core block area is the max of the four resource
//    ratios, with a calibrated routing-overhead multiplier on STE area
//    (default 1.15: placed designs consume more area than raw state count).
//
//  * ROUTABILITY: the reconfigurable routing matrix bounds the in/out
//    degree of a single element. Designs exceeding max_fan_in/max_fan_out
//    "place but fail to fully route", which is exactly the failure the
//    paper hits when packing high-dimensional vectors with flat collector
//    fan-in (d = 64, 128), while tree-shaped collectors route fine.

#include <cstddef>
#include <string>
#include <vector>

#include "anml/network.hpp"
#include "apsim/device.hpp"

namespace apss::apsim {

struct PlacementOptions {
  /// Hard routability limits of the routing matrix.
  std::size_t max_fan_in = 48;
  std::size_t max_fan_out = 48;
  /// Placed STE area = raw STE count x this factor (routing slack, calibrated
  /// against the paper's Sec. V-A utilization numbers).
  double routing_overhead = 1.15;
};

struct PlacementResult {
  bool placed = false;  ///< all components fit on the device
  bool routed = false;  ///< no element exceeds routing-degree limits
  std::vector<std::string> issues;

  std::size_t component_count = 0;
  std::size_t ste_count = 0;
  std::size_t counter_count = 0;
  std::size_t boolean_count = 0;
  std::size_t reporting_count = 0;

  std::size_t blocks_used = 0;
  std::size_t half_cores_used = 0;
  std::size_t max_observed_fan_in = 0;
  std::size_t max_observed_fan_out = 0;

  /// apadmin-style utilization: block area / total blocks of the geometry.
  double block_utilization(const DeviceGeometry& g) const {
    return g.total_blocks() == 0
               ? 0.0
               : static_cast<double>(blocks_used) /
                     static_cast<double>(g.total_blocks());
  }
};

/// Places `network` onto a device with `geometry`.
PlacementResult place(const anml::AutomataNetwork& network,
                      const DeviceGeometry& geometry,
                      const PlacementOptions& options = {});

/// Per-NFA resource footprint, for capacity planning without building the
/// full n-vector network.
struct MacroFootprint {
  std::size_t stes = 0;
  std::size_t counters = 0;
  std::size_t booleans = 0;
  std::size_t reporting = 0;
};

MacroFootprint footprint_of(const anml::AutomataNetwork& network);

/// How many identical copies of `macro` fit on `geometry` (the paper's
/// vectors-per-board-configuration capacity rule).
std::size_t max_copies(const MacroFootprint& macro,
                       const DeviceGeometry& geometry,
                       const PlacementOptions& options = {});

}  // namespace apss::apsim
