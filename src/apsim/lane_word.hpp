#pragma once
// Wide-lane words for the bit-parallel batch backend (ROADMAP item 1: widen
// the word). A BatchProgram packs one macro per BIT; the interpreter's state
// vectors are flat arrays of 64-bit words, and every per-cycle operation is
// a pure bitwise map over them — so the execution width is a free parameter:
// stepping 256 or 512 lanes per operation instead of 64 changes wall-clock
// only, never a single ReportEvent.
//
// Three layers keep that guarantee checkable:
//
//  * LaneWord<W> — the PORTABLE W-bit lane word: an array of W/64 uint64_t
//    with bitwise ops written as fixed-trip loops any compiler can unroll
//    (and, with vector flags, auto-vectorize). It defines the semantics;
//    it is always available, on every architecture.
//  * LaneKernels — the two hot per-cycle loops (packed-row OR and the
//    bit-sliced counter update) behind function pointers, so AVX2 / AVX-512
//    translation units compiled with their own target flags can supply
//    intrinsic versions of the SAME bitwise dataflow.
//  * resolve_lane_kernels() — runtime dispatch: an explicit width is always
//    honored (the SIMD variant when the CPU + build support it, the
//    portable LaneWord variant otherwise); kAuto picks the widest
//    SIMD-backed width, falling back to the classic 64-bit scalar path.
//    APSS_DISABLE_SIMD=1 in the environment forces the portable variants
//    everywhere — the knob CI uses to keep the non-x86 code paths green.
//
// Lane layout is width-agnostic: lane l always lives at 64-bit word l/64,
// bit l%64. A wider word just processes W/64 consecutive words per
// operation, so programs (and their on-disk artifacts, docs/ARTIFACTS.md)
// never depend on the width they will run at.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace apss::apsim {

/// 64-bit words per 512-bit block — the alignment quantum BatchProgram pads
/// its packed row table to, so every resolved width divides the storage.
inline constexpr std::size_t kLaneBlockWords = 8;

/// Requested lane-word width for BatchSimulator execution.
enum class LaneWidth : std::uint16_t {
  kAuto = 0,  ///< widest SIMD-backed width; 64-bit scalar when none
  k64 = 64,   ///< the classic one-word scalar path
  k256 = 256,  ///< four words per step (AVX2 when available)
  k512 = 512,  ///< eight words per step (AVX-512 when available)
};

const char* to_string(LaneWidth width) noexcept;

/// Parses "auto" / "64" / "256" / "512"; returns false on anything else.
bool parse_lane_width(std::string_view text, LaneWidth* out) noexcept;

/// The portable W-bit lane word: W/64 little-endian 64-bit limbs, lane
/// (w * 64 + b) at limb w bit b — the same layout BatchProgram packs its
/// rows in, so loads are plain memcpy-like reads. All ops are bitwise and
/// lane-local; the fixed-size loops vectorize under -O2 on any target.
template <std::size_t W>
struct LaneWord {
  static_assert(W == 64 || W == 256 || W == 512, "unsupported lane width");
  static constexpr std::size_t kWords = W / 64;

  std::uint64_t limb[kWords];

  static LaneWord load(const std::uint64_t* p) noexcept {
    LaneWord v;
    for (std::size_t i = 0; i < kWords; ++i) {
      v.limb[i] = p[i];
    }
    return v;
  }
  void store(std::uint64_t* p) const noexcept {
    for (std::size_t i = 0; i < kWords; ++i) {
      p[i] = limb[i];
    }
  }
  static LaneWord zero() noexcept {
    LaneWord v;
    for (std::size_t i = 0; i < kWords; ++i) {
      v.limb[i] = 0;
    }
    return v;
  }
  friend LaneWord operator|(LaneWord a, const LaneWord& b) noexcept {
    for (std::size_t i = 0; i < kWords; ++i) {
      a.limb[i] |= b.limb[i];
    }
    return a;
  }
  friend LaneWord operator&(LaneWord a, const LaneWord& b) noexcept {
    for (std::size_t i = 0; i < kWords; ++i) {
      a.limb[i] &= b.limb[i];
    }
    return a;
  }
  friend LaneWord operator^(LaneWord a, const LaneWord& b) noexcept {
    for (std::size_t i = 0; i < kWords; ++i) {
      a.limb[i] ^= b.limb[i];
    }
    return a;
  }
  /// *this & ~mask (the counter reset / pulse edge op).
  LaneWord andnot(const LaneWord& mask) const noexcept {
    LaneWord v;
    for (std::size_t i = 0; i < kWords; ++i) {
      v.limb[i] = limb[i] & ~mask.limb[i];
    }
    return v;
  }
  bool any() const noexcept {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kWords; ++i) {
      acc |= limb[i];
    }
    return acc != 0;
  }
};

/// Everything one bit-sliced counter update needs (one call per cycle):
/// the per-lane arrays all hold `words` 64-bit words (a multiple of the
/// kernel's block size, zero-padded past the live lanes), and `planes`
/// holds plane_count rows of `words` words each (plane q at planes + q *
/// words). See BatchSimulator::step for the dataflow this implements.
struct LaneCounterCtx {
  std::uint64_t* ring = nullptr;     ///< in: collector roots; out: match word
  const std::uint64_t* scratch = nullptr;  ///< this cycle's packed match word
  std::uint64_t* planes = nullptr;         ///< bit-sliced counts
  std::uint64_t* cond_prev = nullptr;  ///< >= threshold condition last cycle
  std::uint64_t* pulse = nullptr;      ///< out: counter pulse next cycle
  const std::uint64_t* valid = nullptr;  ///< live-lane masks (0 in padding)
  std::size_t words = 0;
  std::uint32_t plane_count = 0;
  std::uint32_t cond_plane = 0;
  std::uint64_t bias = 0;  ///< counter reload value (2^P - threshold)
  bool sort_now = false;   ///< uniform count enable this cycle
  bool eof_now = false;    ///< uniform counter reset this cycle
};

/// The resolved execution strategy: a width plus the two hot-loop kernels.
/// Value-semantic and immutable after resolution; share freely.
struct LaneKernels {
  LaneWidth width = LaneWidth::k64;  ///< resolved width, never kAuto
  bool simd = false;                 ///< vector-ISA backed (vs portable)
  const char* isa = "scalar";        ///< scalar | portable | avx2 | avx512
  /// dst |= src over `words` words (both block-aligned and padded).
  void (*or_rows)(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t words) = nullptr;
  void (*counter_update)(const LaneCounterCtx& ctx) = nullptr;

  std::size_t width_bits() const noexcept {
    return static_cast<std::size_t>(width);
  }
  std::size_t block_words() const noexcept { return width_bits() / 64; }
};

/// True when the environment variable APSS_DISABLE_SIMD is set to anything
/// but "" or "0" — the portable-fallback override (read on every resolve,
/// so tests can flip it between simulator constructions).
bool lane_simd_disabled_by_env() noexcept;

/// Runtime CPU feature checks (false on non-x86 builds).
bool cpu_supports_avx2() noexcept;
bool cpu_supports_avx512() noexcept;

/// Resolves `requested` to concrete kernels. Explicit widths are always
/// honored: the SIMD variant when compiled in AND supported by this CPU
/// AND not disabled by APSS_DISABLE_SIMD, else the portable LaneWord
/// variant of the same width (bit-identical, just slower). kAuto returns
/// the widest SIMD-backed width, or the 64-bit scalar path when none.
LaneKernels resolve_lane_kernels(LaneWidth requested = LaneWidth::kAuto);

namespace detail {
/// SIMD kernel registries, defined in lane_kernels_{avx2,avx512}.cpp.
/// Null when the translation unit was built without its target flags
/// (non-x86, or a compiler without -mavx2 / -mavx512f).
const LaneKernels* avx2_lane_kernels() noexcept;
const LaneKernels* avx512_lane_kernels() noexcept;
}  // namespace detail

}  // namespace apss::apsim
