#include "apsim/placement.hpp"

#include <algorithm>
#include <cmath>

namespace apss::apsim {

namespace {

struct Component {
  std::size_t stes = 0;
  std::size_t counters = 0;
  std::size_t booleans = 0;
  std::size_t reporting = 0;
};

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Block area one half core charges for the resources packed into it.
std::size_t half_core_blocks(const Component& usage,
                             const DeviceGeometry& g,
                             double overhead) {
  const auto placed_stes = static_cast<std::size_t>(
      std::ceil(static_cast<double>(usage.stes) * overhead));
  std::size_t blocks = ceil_div(placed_stes, g.stes_per_block);
  blocks = std::max(blocks, ceil_div(usage.counters, g.counters_per_block));
  blocks = std::max(blocks, ceil_div(usage.booleans, g.booleans_per_block));
  blocks = std::max(blocks, ceil_div(usage.reporting, g.max_reporting_per_block));
  return blocks;
}

bool component_fits(const Component& current, const Component& add,
                    const DeviceGeometry& g, double overhead) {
  Component merged = current;
  merged.stes += add.stes;
  merged.counters += add.counters;
  merged.booleans += add.booleans;
  merged.reporting += add.reporting;
  return half_core_blocks(merged, g, overhead) <= g.blocks_per_half_core;
}

}  // namespace

MacroFootprint footprint_of(const anml::AutomataNetwork& network) {
  const anml::NetworkStats s = network.stats();
  return {s.ste_count, s.counter_count, s.boolean_count, s.reporting_count};
}

PlacementResult place(const anml::AutomataNetwork& network,
                      const DeviceGeometry& geometry,
                      const PlacementOptions& options) {
  PlacementResult result;

  // --- Gather components ---------------------------------------------------
  std::vector<std::uint32_t> labels;
  const std::size_t ncomp = network.components(labels);
  result.component_count = ncomp;
  std::vector<Component> components(ncomp);
  for (std::size_t i = 0; i < network.size(); ++i) {
    const anml::Element& e = network.element(static_cast<anml::ElementId>(i));
    Component& c = components[labels[i]];
    switch (e.kind) {
      case anml::ElementKind::kSte:
        ++c.stes;
        ++result.ste_count;
        break;
      case anml::ElementKind::kCounter:
        ++c.counters;
        ++result.counter_count;
        break;
      case anml::ElementKind::kBoolean:
        ++c.booleans;
        ++result.boolean_count;
        break;
    }
    if (e.reporting) {
      ++c.reporting;
      ++result.reporting_count;
    }
  }

  // --- Routability ----------------------------------------------------------
  {
    std::vector<std::size_t> fin(network.size(), 0), fout(network.size(), 0);
    for (const anml::Edge& e : network.edges()) {
      ++fout[e.from];
      ++fin[e.to];
    }
    result.routed = true;
    for (std::size_t i = 0; i < network.size(); ++i) {
      result.max_observed_fan_in = std::max(result.max_observed_fan_in, fin[i]);
      result.max_observed_fan_out =
          std::max(result.max_observed_fan_out, fout[i]);
      if (fin[i] > options.max_fan_in) {
        result.routed = false;
        result.issues.push_back(
            "element " + std::to_string(i) + " fan-in " +
            std::to_string(fin[i]) + " exceeds routing limit " +
            std::to_string(options.max_fan_in) + " (partially routed)");
      }
      if (fout[i] > options.max_fan_out) {
        result.routed = false;
        result.issues.push_back(
            "element " + std::to_string(i) + " fan-out " +
            std::to_string(fout[i]) + " exceeds routing limit " +
            std::to_string(options.max_fan_out) + " (partially routed)");
      }
    }
  }

  // --- Half-core packing (first-fit decreasing on STE size) ----------------
  std::vector<std::size_t> order(ncomp);
  for (std::size_t i = 0; i < ncomp; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return components[a].stes > components[b].stes;
  });

  std::vector<Component> half_cores;  // running usage per opened half core
  result.placed = true;
  for (const std::size_t ci : order) {
    const Component& c = components[ci];
    if (c.stes == 0 && c.counters == 0 && c.booleans == 0) {
      continue;
    }
    // A single NFA may not span half cores.
    Component empty;
    if (!component_fits(empty, c, geometry, options.routing_overhead)) {
      result.placed = false;
      result.issues.push_back("component with " + std::to_string(c.stes) +
                              " STEs exceeds half-core capacity");
      continue;
    }
    bool assigned = false;
    for (Component& hc : half_cores) {
      if (component_fits(hc, c, geometry, options.routing_overhead)) {
        hc.stes += c.stes;
        hc.counters += c.counters;
        hc.booleans += c.booleans;
        hc.reporting += c.reporting;
        assigned = true;
        break;
      }
    }
    if (!assigned) {
      half_cores.push_back(c);
    }
  }

  if (half_cores.size() > geometry.half_cores()) {
    result.placed = false;
    result.issues.push_back(
        "design needs " + std::to_string(half_cores.size()) +
        " half cores but the device has " +
        std::to_string(geometry.half_cores()));
  }

  result.half_cores_used = half_cores.size();
  for (const Component& hc : half_cores) {
    result.blocks_used +=
        half_core_blocks(hc, geometry, options.routing_overhead);
  }
  return result;
}

std::size_t max_copies(const MacroFootprint& macro,
                       const DeviceGeometry& geometry,
                       const PlacementOptions& options) {
  if (macro.stes == 0) {
    return 0;
  }
  // Pack identical macros into one half core, then scale by half cores.
  const auto placed_ste = static_cast<double>(macro.stes) * options.routing_overhead;
  std::size_t per_hc = static_cast<std::size_t>(
      std::floor(static_cast<double>(geometry.stes_per_half_core()) / placed_ste));
  if (macro.counters > 0) {
    per_hc = std::min(per_hc, geometry.blocks_per_half_core *
                                  geometry.counters_per_block / macro.counters);
  }
  if (macro.booleans > 0) {
    per_hc = std::min(per_hc, geometry.blocks_per_half_core *
                                  geometry.booleans_per_block / macro.booleans);
  }
  if (macro.reporting > 0) {
    per_hc = std::min(per_hc,
                      geometry.blocks_per_half_core *
                          geometry.max_reporting_per_block / macro.reporting);
  }
  return per_hc * geometry.half_cores();
}

}  // namespace apss::apsim
