// AVX-512 lane kernels: 512 lanes per operation on one zmm register. Built
// with -mavx512f when the compiler supports it; a stub registry otherwise
// (the dispatcher then serves LaneWidth::k512 with the portable
// LaneWord<512> path). Only AVX512F instructions are used, so any AVX-512
// CPU qualifies; nothing executes unless resolve_lane_kernels checked
// __builtin_cpu_supports("avx512f") first.

#include "apsim/lane_word.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "apsim/lane_kernels_impl.hpp"

namespace apss::apsim::detail {
namespace {

/// Vector policy over one unaligned 512-bit integer register; the same
/// bitwise contract as LaneWord<512>.
struct Avx512Word {
  static constexpr std::size_t kWords = 8;
  __m512i v;

  static Avx512Word load(const std::uint64_t* p) noexcept {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::uint64_t* p) const noexcept { _mm512_storeu_si512(p, v); }
  static Avx512Word zero() noexcept { return {_mm512_setzero_si512()}; }
  friend Avx512Word operator|(Avx512Word a, Avx512Word b) noexcept {
    return {_mm512_or_si512(a.v, b.v)};
  }
  friend Avx512Word operator&(Avx512Word a, Avx512Word b) noexcept {
    return {_mm512_and_si512(a.v, b.v)};
  }
  friend Avx512Word operator^(Avx512Word a, Avx512Word b) noexcept {
    return {_mm512_xor_si512(a.v, b.v)};
  }
  Avx512Word andnot(Avx512Word mask) const noexcept {
    return {_mm512_andnot_si512(mask.v, v)};  // intrinsic is ~a & b
  }
  bool any() const noexcept { return _mm512_test_epi64_mask(v, v) != 0; }
};

constexpr LaneKernels make_kernels() {
  LaneKernels k;
  k.width = LaneWidth::k512;
  k.simd = true;
  k.isa = "avx512";
  k.or_rows = or_rows_impl<Avx512Word>;
  k.counter_update = counter_update_impl<Avx512Word>;
  return k;
}

const LaneKernels kAvx512Kernels = make_kernels();

}  // namespace

const LaneKernels* avx512_lane_kernels() noexcept { return &kAvx512Kernels; }

}  // namespace apss::apsim::detail

#else  // !defined(__AVX512F__)

namespace apss::apsim::detail {
const LaneKernels* avx512_lane_kernels() noexcept { return nullptr; }
}  // namespace apss::apsim::detail

#endif
