#pragma once
// Cycle-accurate execution of an AutomataNetwork.
//
// Semantics implemented here (validated against the paper's Fig. 3/4 traces
// and the AP architecture paper, Dlugosch et al. TPDS'14):
//
//  * Cycle t (1-based) consumes one 8-bit symbol.
//  * An STE is ACTIVE at t iff the symbol matches its class AND it is
//    enabled: all-input start STEs are always enabled, start-of-data STEs
//    are enabled at t=1 only, and any STE is enabled when one of its
//    predecessors produced an output at t-1.
//  * A counter samples its count-enable / reset inputs from element outputs
//    DURING cycle t and updates its internal count at END of cycle t
//    (reset wins over increment). Stock hardware increments by at most one
//    per cycle regardless of how many enable inputs fired (the paper's
//    Sec. VII-A extension raises this cap). When the count condition
//    (count >= threshold) becomes true at the end of t, a pulse-mode
//    counter's output is active during cycle t+1 only; a latch-mode
//    counter's output stays active from t+1 until reset.
//  * Boolean elements are combinational: their output at t is a function of
//    their inputs' outputs at t (validation rejects combinational cycles).
//  * A reporting element generates a ReportEvent in every cycle its output
//    is active.
//  * Dynamic-threshold (extension): an edge into a counter's kThreshold
//    port makes its effective threshold = (source counter's count at the
//    end of the previous cycle) + 1, i.e. the counter fires when its count
//    EXCEEDS the source count — the "if (A > B)" construct of Fig. 8.
//    Pulses fire on each rising edge of the condition.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "anml/network.hpp"
#include "apsim/device.hpp"
#include "util/cancellation.hpp"

namespace apss::apsim {

/// One reporting-state activation: what the AP conveys to the host per
/// match. Events are emitted in cycle order; within a cycle, counter-driven
/// reports follow counter creation order (see docs/SIMULATOR_SEMANTICS.md).
struct ReportEvent {
  std::uint64_t cycle = 0;  ///< 1-based symbol offset of the activation
  anml::ElementId element = anml::kInvalidElement;  ///< the reporting STE
  std::uint32_t report_code = 0;  ///< user payload (dataset vector id)

  bool operator==(const ReportEvent&) const = default;
};

/// Shifts every event's cycle by `base_cycle`, in place. A shard that
/// simulated frames starting `base_cycle` symbols into a configuration's
/// full query stream rebases its buffer with this; rebased shard buffers
/// concatenated in frame order are bit-identical to one continuous run
/// (frames reset all automata state, so shard boundaries are invisible).
void rebase_events(std::vector<ReportEvent>& events,
                   std::uint64_t base_cycle) noexcept;

/// Feature gates for a simulation run, derived from DeviceFeatures. The
/// defaults model stock Gen-1 hardware.
struct SimOptions {
  /// Counter increment cap per cycle (stock AP: 1).
  std::uint32_t max_counter_increment = 1;
  /// Allow kThreshold edges (Sec. VII-B extension).
  bool allow_dynamic_threshold = false;

  static SimOptions from(const DeviceFeatures& f) {
    return {f.max_counter_increment, f.dynamic_threshold};
  }
};

/// Per-cycle observer for traces (the quickstart example renders Fig. 3).
struct TraceSink {
  virtual ~TraceSink() = default;
  /// Called after each cycle with the ids of output-active elements.
  virtual void on_cycle(std::uint64_t cycle, std::uint8_t symbol,
                        std::span<const anml::ElementId> active,
                        const class Simulator& sim) = 0;
};

class Simulator {
 public:
  /// Compiles `network` for execution. The network must outlive the
  /// simulator. Throws std::invalid_argument if validation fails.
  explicit Simulator(const anml::AutomataNetwork& network,
                     SimOptions options = {});

  /// Returns to the pre-stream state (cycle 0, all counts zero).
  void reset();

  /// Consumes one symbol; advances to the next cycle.
  void step(std::uint8_t symbol);

  /// reset() + step over the whole stream; returns collected reports.
  std::vector<ReportEvent> run(std::span<const std::uint8_t> stream);

  /// Runs WITHOUT resetting first — streams are concatenable (back-to-back
  /// queries), matching how a host drives the real device.
  std::vector<ReportEvent> run_continue(std::span<const std::uint8_t> stream);

  /// run()/run_continue() with cooperative checkpoints: every
  /// `control.checkpoint_period` symbols (the engines pass one query frame)
  /// the simulator polls the deadline/cancellation token — throwing
  /// util::DeadlineExceeded / util::OperationCancelled mid-stream — and
  /// fires the "sim.frame" fault site (util/fault_injection.hpp). With an
  /// idle control and no armed injector this is the plain loop plus one
  /// branch per call.
  std::vector<ReportEvent> run(std::span<const std::uint8_t> stream,
                               const util::RunControl& control);
  std::vector<ReportEvent> run_continue(std::span<const std::uint8_t> stream,
                                        const util::RunControl& control);

  // --- Introspection (used by traces and tests) ---------------------------
  std::uint64_t cycle() const noexcept { return cycle_; }
  bool output_active(anml::ElementId id) const { return outputs_.at(id) != 0; }
  std::uint64_t counter_value(anml::ElementId id) const;
  const std::vector<ReportEvent>& reports() const noexcept { return reports_; }
  void clear_reports() { reports_.clear(); }

  void set_trace(TraceSink* sink) noexcept { trace_ = sink; }

 private:
  struct CounterState {
    std::uint64_t count = 0;
    std::uint32_t threshold = 1;
    anml::CounterMode mode = anml::CounterMode::kPulse;
    std::int32_t dynamic_source = -1;  ///< counter index driving threshold
    std::uint64_t dynamic_source_count = 0;  ///< sampled at end of prev cycle
    bool condition_prev = false;  ///< count condition at end of prev cycle
    bool latched = false;
    std::uint32_t pending_increment = 0;
    bool pending_reset = false;
    bool output_now = false;   ///< output during the current cycle
    bool output_next = false;  ///< staged for the next cycle
  };

  void evaluate_booleans();
  void propagate_output(anml::ElementId id);
  void finalize_counters();

  const anml::AutomataNetwork& network_;
  SimOptions options_;

  // Compiled structure.
  std::vector<anml::ElementId> start_all_;  ///< all-input start STEs
  std::vector<anml::ElementId> start_sod_;  ///< start-of-data start STEs
  std::vector<std::uint32_t> counter_index_;  ///< element -> counter slot
  std::vector<anml::ElementId> counter_elements_;
  std::vector<anml::ElementId> boolean_topo_;  ///< booleans in topo order
  // CSR out-adjacency split by destination port.
  struct OutEdge {
    anml::ElementId to;
    anml::CounterPort port;
  };
  std::vector<std::uint32_t> out_offset_;
  std::vector<OutEdge> out_edges_;
  // CSR in-adjacency for boolean evaluation.
  std::vector<std::uint32_t> bool_in_offset_;
  std::vector<anml::ElementId> bool_in_edges_;

  // Dynamic state.
  std::uint64_t cycle_ = 0;
  std::vector<std::uint8_t> outputs_;        ///< element output this cycle
  std::vector<std::uint8_t> enabled_;        ///< STE enables for this cycle
  std::vector<std::uint8_t> enabled_next_;   ///< being built for next cycle
  std::vector<anml::ElementId> active_list_;       ///< outputs_ set bits
  std::vector<anml::ElementId> enabled_list_;      ///< enabled_ set bits
  std::vector<anml::ElementId> enabled_next_list_;
  std::vector<CounterState> counters_;
  std::vector<ReportEvent> reports_;
  TraceSink* trace_ = nullptr;
};

}  // namespace apss::apsim
