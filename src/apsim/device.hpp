#pragma once
// Micron Automata Processor device model: geometry, timing, and the
// architectural-extension feature flags evaluated in Sec. VII of the paper.

#include <cstddef>
#include <cstdint>
#include <string>

namespace apss::apsim {

/// Physical resource hierarchy (Sec. II-B): a device has 4 ranks x 8 AP
/// chips; each chip has 2 half cores; each half core has 96 blocks of
/// 256 STEs; each block adds 4 counters, 12 booleans, and at most 32
/// reporting STEs. NFAs cannot span half cores.
struct DeviceGeometry {
  std::size_t ranks = 4;
  std::size_t chips_per_rank = 8;
  std::size_t half_cores_per_chip = 2;
  std::size_t blocks_per_half_core = 96;
  std::size_t stes_per_block = 256;
  std::size_t counters_per_block = 4;
  std::size_t booleans_per_block = 12;
  std::size_t max_reporting_per_block = 32;

  std::size_t half_cores() const noexcept {
    return ranks * chips_per_rank * half_cores_per_chip;
  }
  std::size_t stes_per_half_core() const noexcept {
    return blocks_per_half_core * stes_per_block;
  }
  std::size_t total_blocks() const noexcept {
    return half_cores() * blocks_per_half_core;
  }
  std::size_t total_stes() const noexcept {
    return half_cores() * stes_per_half_core();
  }

  /// Single-rank board (the paper's power measurements used one rank).
  static DeviceGeometry one_rank() {
    DeviceGeometry g;
    g.ranks = 1;
    return g;
  }
};

/// Clocking, reconfiguration, and host-link characteristics.
struct DeviceTiming {
  double clock_hz = 133e6;          ///< symbol rate (7.5 ns/symbol)
  double reconfig_seconds = 45e-3;  ///< Gen 1 partial reconfiguration
  double pcie_gbit_per_s = 63.0;    ///< PCIe Gen3 x8 usable bandwidth

  double cycle_seconds() const noexcept { return 1.0 / clock_hz; }
};

/// Architectural extensions (Sec. VII). All default to stock hardware.
struct DeviceFeatures {
  /// Max increments one counter accepts per cycle (stock: 1; Sec. VII-A: 8).
  std::uint32_t max_counter_increment = 1;
  /// Counter threshold port driven by another counter (Sec. VII-B).
  bool dynamic_threshold = false;
  /// STE decomposition factor x (Sec. VII-C): an 8-input STE splits into x
  /// sub-STEs of (8 - log2 x) inputs. 1 = stock.
  std::uint32_t ste_decomposition = 1;
};

/// One named device variant: geometry + timing + feature flags. The three
/// factories below are the paper's evaluation points (Tables III/IV/VIII).
struct DeviceConfig {
  std::string name = "AP Gen 1";
  DeviceGeometry geometry;
  DeviceTiming timing;
  DeviceFeatures features;

  /// Current-generation hardware as evaluated in the paper.
  static DeviceConfig gen1() { return {}; }

  /// Gen 2: ~100x faster partial reconfiguration (Sec. III-C).
  static DeviceConfig gen2() {
    DeviceConfig c;
    c.name = "AP Gen 2";
    c.timing.reconfig_seconds = 45e-3 / 100.0;
    return c;
  }

  /// Gen 2 plus all Sec. VII extensions enabled (the AP Opt+Ext column).
  static DeviceConfig opt_ext() {
    DeviceConfig c = gen2();
    c.name = "AP Opt+Ext";
    c.features.max_counter_increment = 8;
    c.features.dynamic_threshold = true;
    c.features.ste_decomposition = 4;
    return c;
  }
};

}  // namespace apss::apsim
